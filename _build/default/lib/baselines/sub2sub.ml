module Rect = Geometry.Rect
module Point = Geometry.Point
module Int_set = Report.Int_set
module Rng = Sim.Rng

type node = {
  rect : Rect.t;
  mutable view : Int_set.t;  (** semantic neighbors *)
  mutable randoms : Int_set.t;  (** peer-sampling links *)
}

type t = {
  view_size : int;
  random_size : int;
  nodes : (int, node) Hashtbl.t;
  rng : Rng.t;
  mutable next : int;
}

let create ?(view_size = 8) ?(random_size = 3) ~seed () =
  if view_size < 1 then invalid_arg "Sub2sub.create: view_size < 1";
  if random_size < 0 then invalid_arg "Sub2sub.create: random_size < 0";
  { view_size; random_size; nodes = Hashtbl.create 64; rng = Rng.make seed;
    next = 0 }

let size t = Hashtbl.length t.nodes

let ids t = Hashtbl.fold (fun id _ acc -> id :: acc) t.nodes [] |> List.sort compare

let add t rect =
  let id = t.next in
  t.next <- id + 1;
  let node = { rect; view = Int_set.empty; randoms = Int_set.empty } in
  (* Bootstrap with a couple of random contacts. *)
  (match ids t with
  | [] -> ()
  | existing ->
      for _ = 1 to min 3 (List.length existing) do
        node.randoms <- Int_set.add (Rng.pick t.rng existing) node.randoms
      done);
  Hashtbl.replace t.nodes id node;
  id

let remove t id =
  Hashtbl.remove t.nodes id;
  Hashtbl.iter
    (fun _ n ->
      n.view <- Int_set.remove id n.view;
      n.randoms <- Int_set.remove id n.randoms)
    t.nodes

(* Similarity: overlap area, then (negated) center distance so
   near-but-disjoint interests still rank above distant ones. *)
let similarity a b =
  let overlap = Rect.intersection_area a b in
  if overlap > 0.0 then (1, overlap)
  else (0, -.Point.distance (Rect.center a) (Rect.center b))

let better_sim a b = compare a b > 0

let trim_view t node =
  let scored =
    Int_set.fold
      (fun peer acc ->
        match Hashtbl.find_opt t.nodes peer with
        | Some pn -> (similarity node.rect pn.rect, peer) :: acc
        | None -> acc)
      node.view []
  in
  let sorted =
    List.sort (fun (a, _) (b, _) -> if better_sim a b then -1 else 1) scored
  in
  node.view <-
    List.fold_left
      (fun acc (_, peer) -> Int_set.add peer acc)
      Int_set.empty
      (List.filteri (fun i _ -> i < t.view_size) sorted)

let gossip_round t =
  let all = ids t in
  if all <> [] then begin
    List.iter
      (fun id ->
        match Hashtbl.find_opt t.nodes id with
        | None -> ()
        | Some node ->
            (* pick a partner from the merged views, else any node *)
            let contacts =
              Int_set.elements (Int_set.union node.view node.randoms)
              |> List.filter (fun p -> p <> id && Hashtbl.mem t.nodes p)
            in
            let partner =
              match contacts with
              | [] ->
                  let others = List.filter (fun p -> p <> id) all in
                  if others = [] then None else Some (Rng.pick t.rng others)
              | cs -> Some (Rng.pick t.rng cs)
            in
            (match partner with
            | None -> ()
            | Some pid -> (
                match Hashtbl.find_opt t.nodes pid with
                | None -> ()
                | Some pnode ->
                    (* push-pull: both sides absorb the union *)
                    let union =
                      Int_set.union
                        (Int_set.union node.view pnode.view)
                        (Int_set.union node.randoms pnode.randoms)
                    in
                    node.view <-
                      Int_set.remove id (Int_set.add pid (Int_set.union node.view union));
                    pnode.view <-
                      Int_set.remove pid (Int_set.add id (Int_set.union pnode.view union));
                    trim_view t node;
                    trim_view t pnode));
            (* refresh random links (peer-sampling service) *)
            let others = List.filter (fun p -> p <> id) all in
            if others <> [] then begin
              node.randoms <- Int_set.empty;
              for _ = 1 to min t.random_size (List.length others) do
                node.randoms <- Int_set.add (Rng.pick t.rng others) node.randoms
              done
            end)
      all
  end

let gossip t ~rounds =
  for _ = 1 to rounds do
    gossip_round t
  done

let publish t ~from point =
  let matched =
    Hashtbl.fold
      (fun id n acc ->
        if Rect.contains_point n.rect point then Int_set.add id acc else acc)
      t.nodes Int_set.empty
  in
  let received = ref Int_set.empty in
  let messages = ref 0 in
  let max_hops = ref 0 in
  let queue = Queue.create () in
  let enqueue id hops =
    if not (Int_set.mem id !received) then begin
      received := Int_set.add id !received;
      if hops > !max_hops then max_hops := hops;
      Queue.add (id, hops) queue
    end
  in
  (match Hashtbl.find_opt t.nodes from with
  | None -> ()
  | Some n ->
      received := Int_set.add from !received;
      (* The publisher hands the event to its whole view. *)
      Int_set.iter
        (fun peer ->
          if Hashtbl.mem t.nodes peer then begin
            incr messages;
            enqueue peer 1
          end)
        (Int_set.union n.view n.randoms));
  while not (Queue.is_empty queue) do
    let id, hops = Queue.pop queue in
    match Hashtbl.find_opt t.nodes id with
    | None -> ()
    | Some n ->
        (* Matching nodes flood their whole view (traversing the
           interest community); non-matching relays forward only
           toward neighbors that match (the semantic navigation
           Sub-2-Sub's structures provide). *)
        let self_matches = Rect.contains_point n.rect point in
        Int_set.iter
          (fun peer ->
            match Hashtbl.find_opt t.nodes peer with
            | Some pn
              when (self_matches || Rect.contains_point pn.rect point)
                   && not (Int_set.mem peer !received) ->
                incr messages;
                enqueue peer (hops + 1)
            | Some _ | None -> ())
          (Int_set.union n.view n.randoms)
  done;
  Report.make ~matched ~received:!received ~publisher:from
    ~messages:!messages ~max_hops:!max_hops

let mean_view_overlap t =
  let total = ref 0.0 and count = ref 0 in
  Hashtbl.iter
    (fun _ n ->
      let k = Int_set.cardinal n.view in
      if k > 0 then begin
        let overlapping =
          Int_set.fold
            (fun peer acc ->
              match Hashtbl.find_opt t.nodes peer with
              | Some pn when Rect.intersection_area n.rect pn.rect > 0.0 ->
                  acc + 1
              | Some _ | None -> acc)
            n.view 0
        in
        total := !total +. (float_of_int overlapping /. float_of_int k);
        incr count
      end)
    t.nodes;
  if !count = 0 then 0.0 else !total /. float_of_int !count
