(** Baseline: broadcast flooding.

    Every event reaches every subscriber (the degenerate upper bound
    §3.1 warns about: "the propagation of an event may degenerate into
    a broadcast"). Zero false negatives, maximal false positives,
    [N - 1] messages per event. *)

type t

val create : unit -> t
val add : t -> Geometry.Rect.t -> int
val remove : t -> int -> unit
val size : t -> int
val publish : t -> from:int -> Geometry.Point.t -> Report.t
