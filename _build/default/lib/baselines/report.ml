module Int_set = Set.Make (Int)

type t = {
  matched : Int_set.t;
  delivered : Int_set.t;
  received : Int_set.t;
  false_positives : int;
  false_negatives : int;
  messages : int;
  max_hops : int;
}

let make ~matched ~received ~publisher ~messages ~max_hops =
  let delivered = Int_set.inter received matched in
  let spurious = Int_set.remove publisher (Int_set.diff received matched) in
  let missed = Int_set.diff matched delivered in
  {
    matched;
    delivered;
    received;
    false_positives = Int_set.cardinal spurious;
    false_negatives = Int_set.cardinal missed;
    messages;
    max_hops;
  }
