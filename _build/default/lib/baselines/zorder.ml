module Rect = Geometry.Rect
module Point = Geometry.Point

type t = { bits : int; space : Rect.t; dims : int }

let create ?(bits_per_dim = 4) ~space () =
  if bits_per_dim < 1 || bits_per_dim > 10 then
    invalid_arg "Zorder.create: bits_per_dim outside [1, 10]";
  let dims = Rect.dims space in
  for i = 0 to dims - 1 do
    if
      not
        (Float.is_finite (Rect.low space i) && Float.is_finite (Rect.high space i))
    then invalid_arg "Zorder.create: unbounded space"
  done;
  { bits = bits_per_dim; space; dims }

let dims t = t.dims
let cells_per_dim t = 1 lsl t.bits

let total_cells t =
  int_of_float (float_of_int (cells_per_dim t) ** float_of_int t.dims)

let cell_index t i x =
  let lo = Rect.low t.space i and hi = Rect.high t.space i in
  let clamped = Float.max lo (Float.min x hi) in
  let frac = (clamped -. lo) /. (hi -. lo) in
  min (cells_per_dim t - 1) (int_of_float (frac *. float_of_int (cells_per_dim t)))

let z_key t indices =
  let key = ref 0 in
  for bit = t.bits - 1 downto 0 do
    Array.iter
      (fun idx -> key := (!key lsl 1) lor ((idx lsr bit) land 1))
      indices
  done;
  !key

let point_key t p =
  z_key t (Array.init t.dims (fun i -> cell_index t i (Point.coord p i)))

let rect_keys t r =
  let lo = Array.init t.dims (fun i -> cell_index t i (Rect.low r i)) in
  let hi = Array.init t.dims (fun i -> cell_index t i (Rect.high r i)) in
  let keys = ref [] in
  let idx = Array.copy lo in
  let rec enumerate d =
    if d = t.dims then keys := z_key t idx :: !keys
    else
      for v = lo.(d) to hi.(d) do
        idx.(d) <- v;
        enumerate (d + 1)
      done
  in
  enumerate 0;
  !keys

let unz_key t key =
  let indices = Array.make t.dims 0 in
  let k = ref key in
  for bit = 0 to t.bits - 1 do
    for d = t.dims - 1 downto 0 do
      indices.(d) <- indices.(d) lor ((!k land 1) lsl bit);
      k := !k lsr 1
    done
  done;
  indices

let cell_rect t key =
  if key < 0 || key >= total_cells t then
    invalid_arg "Zorder.cell_rect: key out of range";
  let indices = unz_key t key in
  let low =
    Array.init t.dims (fun i ->
        let lo = Rect.low t.space i and hi = Rect.high t.space i in
        lo
        +. float_of_int indices.(i) /. float_of_int (cells_per_dim t)
           *. (hi -. lo))
  in
  let high =
    Array.init t.dims (fun i ->
        let lo = Rect.low t.space i and hi = Rect.high t.space i in
        lo
        +. float_of_int (indices.(i) + 1) /. float_of_int (cells_per_dim t)
           *. (hi -. lo))
  in
  Rect.make ~low ~high
