(** Baseline: direct mapping of the containment graph to a tree
    (the semantic overlay of Chand & Felber [11], as discussed in
    §3.1).

    Every subscriber's parent is its smallest strict container (ties
    by insertion order); subscribers contained in nothing hang off a
    virtual root. Dissemination walks from the virtual root down every
    child whose filter matches the event, so there are no false
    positives and no false negatives {e by construction} — the
    weaknesses the paper points out are structural: the virtual root's
    degree grows with the number of uncontained filters, and the tree
    depth follows the containment chains (§3.1: "the resulting tree
    might be heavily unbalanced with a high variance in the degrees of
    internal nodes"). *)

type t

val create : unit -> t

val add : t -> Geometry.Rect.t -> int
(** Register a subscriber; returns its id. O(n) containment scans. *)

val remove : t -> int -> unit
(** Unregister; its children re-attach to its parent. *)

val size : t -> int

val publish : t -> from:int -> Geometry.Point.t -> Report.t
(** Dissemination cost model: the event travels from the publisher up
    to the virtual root ([depth from] hops) and down every matching
    path; one message per edge walked. *)

val max_degree : t -> int
(** Largest fan-out, virtual root included. *)

val depth : t -> int
(** Longest root-to-leaf path. *)
