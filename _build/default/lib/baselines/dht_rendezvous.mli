(** Baseline: DHT rendezvous pub/sub over a space-filling curve
    (Meghdoot/Scribe-style, the DHT-based family of §4).

    The attribute space is cut into a fixed grid; each cell's Z-order
    key is owned by a rendezvous node on a Chord-like ring (ids hashed
    onto the key space, lookup in [⌈log2 N⌉] hops). A subscription
    registers on {e every} cell its rectangle overlaps — the "mapping
    of complex filters to uni-dimensional name spaces" whose cost the
    paper criticizes: wide filters register on many cells, so
    subscription cost and per-node storage grow with filter size,
    and (in the default cell-granular mode) every registrant of the
    event's cell receives the event, giving false positives. There
    are no false negatives (cells cover the space).

    [exact] mode lets rendezvous nodes keep whole rectangles and
    filter exactly — accuracy is then perfect and only the cost
    problems remain. *)

type t

val create : ?bits_per_dim:int -> ?exact:bool -> space:Geometry.Rect.t -> unit -> t
(** [bits_per_dim] (default 4, i.e. 16 cells per dimension) fixes the
    grid resolution. [space] must be finite in every dimension.
    @raise Invalid_argument on unbounded space or [bits_per_dim]
    outside [1, 10]. *)

val add : t -> Geometry.Rect.t -> int
(** Register a subscription. Registration messages are accumulated in
    {!registration_messages}. Rectangles are clipped to the space. *)

val remove : t -> int -> unit
val size : t -> int

val publish : t -> from:int -> Geometry.Point.t -> Report.t
(** Route the event to its cell's rendezvous node and forward to
    registrants. Points outside the space are clamped. *)

val registration_messages : t -> int
(** Total messages spent registering subscriptions so far (ring
    routing to each distinct rendezvous cell). *)

val max_registrations : t -> int
(** Largest number of registrations stored by one rendezvous node —
    the storage hot-spot measure. *)

val lookup_hops : t -> int
(** Current [⌈log2 N⌉] (0 when fewer than 2 nodes). *)
