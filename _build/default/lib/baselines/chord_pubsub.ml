module Rect = Geometry.Rect
module Point = Geometry.Point
module Int_set = Report.Int_set
module Ring = Chord.Ring

type t = {
  ring : Ring.t;
  grid : Zorder.t;
  exact : bool;
  rects : (int, Rect.t) Hashtbl.t;  (** live subscribers *)
  stores : (int, (int, (int * Rect.t) list) Hashtbl.t) Hashtbl.t;
      (** rendezvous state held {e at} each ring node:
          node id -> cell key -> registrations *)
  mutable app_messages : int;
}

let create ?(bits_per_dim = 4) ?(exact = false) ~space ~seed () =
  {
    ring = Ring.create ~seed ();
    grid = Zorder.create ~bits_per_dim ~space ();
    exact;
    rects = Hashtbl.create 64;
    stores = Hashtbl.create 64;
    app_messages = 0;
  }

let size t = Hashtbl.length t.rects
let ring_consistent t = Ring.is_consistent t.ring

(* Spread grid cells uniformly over the 24-bit ring (raw cell keys
   would all land on one short arc). *)
let ring_key cell = Chord.Key.hash_node (cell + 0x5151)

let store_of t owner =
  match Hashtbl.find_opt t.stores owner with
  | Some s -> s
  | None ->
      let s = Hashtbl.create 16 in
      Hashtbl.replace t.stores owner s;
      s

let register t id r =
  List.iter
    (fun key ->
      (* Route to the key owner; one more message carries the
         registration. *)
      match Ring.lookup t.ring ~from:id (ring_key key) with
      | Some (owner, _) ->
          t.app_messages <- t.app_messages + 1;
          let store = store_of t owner in
          let prev =
            match Hashtbl.find_opt store key with Some l -> l | None -> []
          in
          Hashtbl.replace store key ((id, r) :: prev)
      | None -> () (* registration lost to churn *))
    (Zorder.rect_keys t.grid r)

(* Chord's key handoff: when ownership moved (a join shifted a key
   range), the old owner transfers the affected registrations to the
   new one. Dead owners' stores are lost, not transferred. *)
let rehome t =
  let moves = ref [] in
  Hashtbl.iter
    (fun owner store ->
      if Ring.key_of t.ring owner <> None then
        Hashtbl.iter
          (fun cell regs ->
            match Ring.owner_of t.ring (ring_key cell) with
            | Some correct when correct <> owner ->
                moves := (owner, cell, regs, correct) :: !moves
            | Some _ | None -> ())
          store)
    t.stores;
  List.iter
    (fun (owner, cell, regs, correct) ->
      (match Hashtbl.find_opt t.stores owner with
      | Some store -> Hashtbl.remove store cell
      | None -> ());
      t.app_messages <- t.app_messages + 1;
      let dst = store_of t correct in
      let prev =
        match Hashtbl.find_opt dst cell with Some l -> l | None -> []
      in
      Hashtbl.replace dst cell (regs @ prev))
    !moves

let join_subscriber t r =
  let id = Ring.join t.ring in
  (* Let the ring absorb the newcomer, then hand over the key range it
     now owns. *)
  ignore (Ring.stabilize t.ring);
  rehome t;
  Hashtbl.replace t.rects id r;
  register t id r;
  id

let crash t id =
  Ring.crash t.ring id;
  Hashtbl.remove t.rects id
(* the rendezvous state this node held (t.stores) dies with it: reads
   check liveness *)

let repair t =
  ignore (Ring.stabilize t.ring);
  (* Application-level recovery: drop every store and re-register all
     live subscriptions at the current owners. *)
  Hashtbl.reset t.stores;
  Hashtbl.iter (fun id r -> register t id r) t.rects

let publish t ~from point =
  let matched =
    Hashtbl.fold
      (fun id r acc ->
        if Rect.contains_point r point then Int_set.add id acc else acc)
      t.rects Int_set.empty
  in
  let m0 = Ring.messages_sent t.ring + t.app_messages in
  let key = Zorder.point_key t.grid point in
  let received, max_hops =
    match Ring.lookup t.ring ~from (ring_key key) with
    | None -> (Int_set.singleton from, 0)
    | Some (owner, hops) ->
        let regs =
          match Hashtbl.find_opt t.stores owner with
          | None -> []
          | Some store -> (
              match Hashtbl.find_opt store key with
              | Some l -> l
              | None -> [])
        in
        let targets =
          List.filter
            (fun (id, r) ->
              Hashtbl.mem t.rects id
              && ((not t.exact) || Rect.contains_point r point))
            regs
        in
        t.app_messages <- t.app_messages + List.length targets;
        ( List.fold_left
            (fun acc (id, _) -> Int_set.add id acc)
            (Int_set.singleton from) targets,
          hops + 1 )
  in
  let messages = Ring.messages_sent t.ring + t.app_messages - m0 in
  Report.make ~matched ~received ~publisher:from ~messages ~max_hops

let messages_sent t = Ring.messages_sent t.ring + t.app_messages

let reset_counters t =
  Ring.reset_counters t.ring;
  t.app_messages <- 0
