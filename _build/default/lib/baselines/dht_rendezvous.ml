module Rect = Geometry.Rect
module Point = Geometry.Point
module Int_set = Report.Int_set

type t = {
  grid : Zorder.t;
  exact : bool;
  cells : (int, (int * Rect.t) list ref) Hashtbl.t;
      (** Z-key -> registrations at the rendezvous owning the key *)
  rects : (int, Rect.t) Hashtbl.t;
  mutable next : int;
  mutable reg_messages : int;
}

let create ?(bits_per_dim = 4) ?(exact = false) ~space () =
  {
    grid = Zorder.create ~bits_per_dim ~space ();
    exact;
    cells = Hashtbl.create 256;
    rects = Hashtbl.create 64;
    next = 0;
    reg_messages = 0;
  }

let size t = Hashtbl.length t.rects

let lookup_hops t =
  let n = size t in
  if n < 2 then 0
  else int_of_float (Float.ceil (log (float_of_int n) /. log 2.0))

let add t r =
  let id = t.next in
  t.next <- id + 1;
  Hashtbl.replace t.rects id r;
  let keys = Zorder.rect_keys t.grid r in
  List.iter
    (fun key ->
      let regs =
        match Hashtbl.find_opt t.cells key with
        | Some regs -> regs
        | None ->
            let regs = ref [] in
            Hashtbl.replace t.cells key regs;
            regs
      in
      regs := (id, r) :: !regs;
      t.reg_messages <- t.reg_messages + max 1 (lookup_hops t))
    keys;
  id

let remove t id =
  Hashtbl.remove t.rects id;
  Hashtbl.iter
    (fun _ regs -> regs := List.filter (fun (rid, _) -> rid <> id) !regs)
    t.cells

let publish t ~from point =
  let matched =
    Hashtbl.fold
      (fun id r acc ->
        if Rect.contains_point r point then Int_set.add id acc else acc)
      t.rects Int_set.empty
  in
  let key = Zorder.point_key t.grid point in
  let route_hops = max 1 (lookup_hops t) in
  let registrants =
    match Hashtbl.find_opt t.cells key with Some regs -> !regs | None -> []
  in
  let targets =
    if t.exact then
      List.filter (fun (_, r) -> Rect.contains_point r point) registrants
    else registrants
  in
  let received =
    List.fold_left
      (fun acc (id, _) -> Int_set.add id acc)
      (Int_set.singleton from) targets
  in
  let messages = route_hops + List.length targets in
  Report.make ~matched ~received ~publisher:from ~messages
    ~max_hops:(route_hops + 1)

let registration_messages t = t.reg_messages

let max_registrations t =
  Hashtbl.fold (fun _ regs acc -> max acc (List.length !regs)) t.cells 0
