(** Rendezvous publish/subscribe over a {e real} Chord ring
    (Meghdoot-style, §4).

    Unlike {!Dht_rendezvous} — a closed-form cost model — every
    operation here is routed hop by hop through {!Chord.Ring}:
    subscriptions travel one routed lookup per overlapped grid cell,
    publications one routed lookup to the event's cell plus one
    message per registrant. Rendezvous state lives at the ring node
    owning the cell's key; when churn moves ownership, registrations
    left on the old owner become unreachable until re-registration —
    the DHT fragility the paper's §4 cites ("limited scalability and
    low resistance to churn"), measured in experiment E19. *)

type t

val create :
  ?bits_per_dim:int ->
  ?exact:bool ->
  space:Geometry.Rect.t ->
  seed:int ->
  unit ->
  t
(** Same grid semantics as {!Dht_rendezvous}; [exact] (default false)
    filters at the rendezvous. *)

val join_subscriber : t -> Geometry.Rect.t -> int
(** Add a ring node owning this subscription and register the
    subscription on every cell it overlaps (routed). Returns the
    subscriber id. *)

val crash : t -> int -> unit
(** The ring node crashes; its rendezvous state is lost. *)

val repair : t -> unit
(** Run Chord stabilization until the ring is consistent, then
    re-register every live subscription (the application-level
    recovery a real deployment needs). *)

val size : t -> int

val publish : t -> from:int -> Geometry.Point.t -> Report.t
(** Route the event to its cell's owner and forward to registrants.
    When routing fails (mid-churn) nobody is reached — the false
    negatives E19 measures. *)

val messages_sent : t -> int
val reset_counters : t -> unit

val ring_consistent : t -> bool
