(** Common accuracy/cost report for baseline routers.

    Mirrors [Drtree.Overlay.publish_report] so experiment E9 can put
    the DR-tree and every baseline in one table. Subscriber ids are
    ints local to each baseline. *)

module Int_set : Set.S with type elt = int

type t = {
  matched : Int_set.t;  (** ground truth: filters containing the event *)
  delivered : Int_set.t;
  received : Int_set.t;
  false_positives : int;
  false_negatives : int;
  messages : int;
  max_hops : int;
}

val make :
  matched:Int_set.t ->
  received:Int_set.t ->
  publisher:int ->
  messages:int ->
  max_hops:int ->
  t
(** Derives [delivered = received ∩ matched] and the error counts
    (the publisher is not counted as a false positive). *)
