lib/baselines/flooding.mli: Geometry Report
