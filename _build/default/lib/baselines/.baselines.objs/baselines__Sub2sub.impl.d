lib/baselines/sub2sub.ml: Geometry Hashtbl List Queue Report Sim
