lib/baselines/zorder.mli: Geometry
