lib/baselines/report.mli: Set
