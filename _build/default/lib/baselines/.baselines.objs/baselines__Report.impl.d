lib/baselines/report.ml: Int Set
