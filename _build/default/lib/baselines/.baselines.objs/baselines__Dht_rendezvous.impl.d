lib/baselines/dht_rendezvous.ml: Float Geometry Hashtbl List Report Zorder
