lib/baselines/per_dimension.ml: Array Float Geometry Hashtbl Report
