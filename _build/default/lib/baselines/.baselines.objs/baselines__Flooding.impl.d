lib/baselines/flooding.ml: Geometry Hashtbl Report
