lib/baselines/zorder.ml: Array Float Geometry
