lib/baselines/containment_tree.mli: Geometry Report
