lib/baselines/sub2sub.mli: Geometry Report
