lib/baselines/chord_pubsub.mli: Geometry Report
