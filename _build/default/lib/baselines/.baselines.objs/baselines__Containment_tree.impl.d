lib/baselines/containment_tree.ml: Geometry Hashtbl Report
