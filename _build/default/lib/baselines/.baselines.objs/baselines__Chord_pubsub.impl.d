lib/baselines/chord_pubsub.ml: Chord Geometry Hashtbl List Report Zorder
