lib/baselines/per_dimension.mli: Geometry Report
