lib/baselines/dht_rendezvous.mli: Geometry Report
