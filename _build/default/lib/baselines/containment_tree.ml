module Rect = Geometry.Rect
module Point = Geometry.Point
module Int_set = Report.Int_set

type node = {
  id : int;
  rect : Rect.t;
  mutable parent : int option;  (** [None] = child of the virtual root *)
  mutable children : Int_set.t;
}

type t = {
  nodes : (int, node) Hashtbl.t;
  mutable top : Int_set.t;  (** children of the virtual root *)
  mutable next : int;
}

let create () = { nodes = Hashtbl.create 64; top = Int_set.empty; next = 0 }
let size t = Hashtbl.length t.nodes

let strictly_contains outer inner =
  Rect.contains outer inner && not (Rect.equal outer inner)

(* The smallest strict container of [r] among current nodes. *)
let smallest_container t r =
  Hashtbl.fold
    (fun _ node acc ->
      if strictly_contains node.rect r then
        match acc with
        | Some best when Rect.area best.rect <= Rect.area node.rect -> acc
        | _ -> Some node
      else acc)
    t.nodes None

let add t r =
  let id = t.next in
  t.next <- id + 1;
  let node = { id; rect = r; parent = None; children = Int_set.empty } in
  (match smallest_container t r with
  | Some parent ->
      node.parent <- Some parent.id;
      parent.children <- Int_set.add id parent.children
  | None -> t.top <- Int_set.add id t.top);
  (* Existing nodes strictly inside [r] whose parent does not separate
     them from [r] re-attach under it. *)
  Hashtbl.iter
    (fun _ other ->
      if other.id <> id && strictly_contains r other.rect then begin
        let better =
          match other.parent with
          | None -> true
          | Some pid -> (
              match Hashtbl.find_opt t.nodes pid with
              | Some p -> Rect.area r < Rect.area p.rect
              | None -> true)
        in
        if better then begin
          (match other.parent with
          | Some pid -> (
              match Hashtbl.find_opt t.nodes pid with
              | Some p -> p.children <- Int_set.remove other.id p.children
              | None -> ())
          | None -> t.top <- Int_set.remove other.id t.top);
          other.parent <- Some id;
          node.children <- Int_set.add other.id node.children
        end
      end)
    t.nodes;
  Hashtbl.replace t.nodes id node;
  id

let remove t id =
  match Hashtbl.find_opt t.nodes id with
  | None -> ()
  | Some node ->
      Hashtbl.remove t.nodes id;
      (match node.parent with
      | Some pid -> (
          match Hashtbl.find_opt t.nodes pid with
          | Some p -> p.children <- Int_set.remove id p.children
          | None -> ())
      | None -> t.top <- Int_set.remove id t.top);
      Int_set.iter
        (fun cid ->
          match Hashtbl.find_opt t.nodes cid with
          | None -> ()
          | Some child -> (
              child.parent <- node.parent;
              match node.parent with
              | Some pid -> (
                  match Hashtbl.find_opt t.nodes pid with
                  | Some p -> p.children <- Int_set.add cid p.children
                  | None -> t.top <- Int_set.add cid t.top)
              | None -> t.top <- Int_set.add cid t.top))
        node.children

let depth_of t id =
  let rec climb id acc =
    if acc > Hashtbl.length t.nodes then acc (* cycle guard *)
    else
      match Hashtbl.find_opt t.nodes id with
      | None -> acc
      | Some { parent = Some pid; _ } -> climb pid (acc + 1)
      | Some { parent = None; _ } -> acc + 1
  in
  climb id 0

let publish t ~from point =
  let matched =
    Hashtbl.fold
      (fun id node acc ->
        if Rect.contains_point node.rect point then Int_set.add id acc else acc)
      t.nodes Int_set.empty
  in
  let received = ref Int_set.empty in
  let messages = ref 0 in
  let max_hops = ref 0 in
  let rec down id hops =
    match Hashtbl.find_opt t.nodes id with
    | None -> ()
    | Some node ->
        if Rect.contains_point node.rect point then begin
          received := Int_set.add id !received;
          if hops > !max_hops then max_hops := hops;
          Int_set.iter
            (fun cid ->
              incr messages;
              down cid (hops + 1))
            node.children
        end
  in
  (* Up to the virtual root... *)
  let up_hops = depth_of t from in
  messages := !messages + up_hops;
  (* ...then down every matching top-level subtree. *)
  Int_set.iter
    (fun id ->
      match Hashtbl.find_opt t.nodes id with
      | Some node when Rect.contains_point node.rect point ->
          incr messages;
          down id (up_hops + 1)
      | Some _ | None -> ())
    t.top;
  received := Int_set.add from !received;
  Report.make ~matched ~received:!received ~publisher:from ~messages:!messages
    ~max_hops:!max_hops

let max_degree t =
  Hashtbl.fold
    (fun _ node acc -> max acc (Int_set.cardinal node.children))
    t.nodes
    (Int_set.cardinal t.top)

let depth t =
  Hashtbl.fold (fun id _ acc -> max acc (depth_of t id)) t.nodes 0
