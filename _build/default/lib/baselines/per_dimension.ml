module Rect = Geometry.Rect
module Point = Geometry.Point
module Int_set = Report.Int_set

type interval = { lo : float; hi : float }

type node = {
  id : int;
  iv : interval;
  mutable parent : int option;
  mutable children : Int_set.t;
}

type dim_tree = {
  nodes : (int, node) Hashtbl.t;
  mutable top : Int_set.t;
}

type t = {
  dims : int;
  trees : dim_tree array;
  rects : (int, Rect.t) Hashtbl.t;
  mutable next : int;
}

let create ~dims =
  if dims < 1 then invalid_arg "Per_dimension.create: dims < 1";
  {
    dims;
    trees =
      Array.init dims (fun _ ->
          { nodes = Hashtbl.create 64; top = Int_set.empty });
    rects = Hashtbl.create 64;
    next = 0;
  }

let size t = Hashtbl.length t.rects

let iv_contains outer inner = outer.lo <= inner.lo && inner.hi <= outer.hi
let iv_equal a b = Float.equal a.lo b.lo && Float.equal a.hi b.hi
let iv_strictly_contains outer inner =
  iv_contains outer inner && not (iv_equal outer inner)
let iv_width iv = iv.hi -. iv.lo

let constrained r i =
  Float.is_finite (Rect.low r i) || Float.is_finite (Rect.high r i)

let tree_add tree id iv =
  let node = { id; iv; parent = None; children = Int_set.empty } in
  let container =
    Hashtbl.fold
      (fun _ other acc ->
        if iv_strictly_contains other.iv iv then
          match acc with
          | Some best when iv_width best.iv <= iv_width other.iv -> acc
          | _ -> Some other
        else acc)
      tree.nodes None
  in
  (match container with
  | Some parent ->
      node.parent <- Some parent.id;
      parent.children <- Int_set.add id parent.children
  | None -> tree.top <- Int_set.add id tree.top);
  Hashtbl.iter
    (fun _ other ->
      if other.id <> id && iv_strictly_contains iv other.iv then begin
        let better =
          match other.parent with
          | None -> true
          | Some pid -> (
              match Hashtbl.find_opt tree.nodes pid with
              | Some p -> iv_width iv < iv_width p.iv
              | None -> true)
        in
        if better then begin
          (match other.parent with
          | Some pid -> (
              match Hashtbl.find_opt tree.nodes pid with
              | Some p -> p.children <- Int_set.remove other.id p.children
              | None -> ())
          | None -> tree.top <- Int_set.remove other.id tree.top);
          other.parent <- Some id;
          node.children <- Int_set.add other.id node.children
        end
      end)
    tree.nodes;
  Hashtbl.replace tree.nodes id node

let tree_remove tree id =
  match Hashtbl.find_opt tree.nodes id with
  | None -> ()
  | Some node ->
      Hashtbl.remove tree.nodes id;
      (match node.parent with
      | Some pid -> (
          match Hashtbl.find_opt tree.nodes pid with
          | Some p -> p.children <- Int_set.remove id p.children
          | None -> ())
      | None -> tree.top <- Int_set.remove id tree.top);
      Int_set.iter
        (fun cid ->
          match Hashtbl.find_opt tree.nodes cid with
          | None -> ()
          | Some child -> (
              child.parent <- node.parent;
              match node.parent with
              | Some pid -> (
                  match Hashtbl.find_opt tree.nodes pid with
                  | Some p -> p.children <- Int_set.add cid p.children
                  | None -> tree.top <- Int_set.add cid tree.top)
              | None -> tree.top <- Int_set.add cid tree.top))
        node.children

let add t r =
  if Rect.dims r <> t.dims then invalid_arg "Per_dimension.add: wrong dims";
  let id = t.next in
  t.next <- id + 1;
  Hashtbl.replace t.rects id r;
  for i = 0 to t.dims - 1 do
    if constrained r i then
      tree_add t.trees.(i) id { lo = Rect.low r i; hi = Rect.high r i }
  done;
  id

let remove t id =
  Hashtbl.remove t.rects id;
  Array.iter (fun tree -> tree_remove tree id) t.trees

let publish t ~from point =
  let matched =
    Hashtbl.fold
      (fun id r acc ->
        if Rect.contains_point r point then Int_set.add id acc else acc)
      t.rects Int_set.empty
  in
  let received = ref (Int_set.singleton from) in
  let messages = ref 0 in
  let max_hops = ref 0 in
  for i = 0 to t.dims - 1 do
    let tree = t.trees.(i) in
    let x = Point.coord point i in
    let rec down id hops =
      match Hashtbl.find_opt tree.nodes id with
      | None -> ()
      | Some node ->
          if node.iv.lo <= x && x <= node.iv.hi then begin
            received := Int_set.add id !received;
            if hops > !max_hops then max_hops := hops;
            Int_set.iter
              (fun cid ->
                incr messages;
                down cid (hops + 1))
              node.children
          end
    in
    Int_set.iter
      (fun id ->
        match Hashtbl.find_opt tree.nodes id with
        | Some node when node.iv.lo <= x && x <= node.iv.hi ->
            incr messages;
            down id 1
        | Some _ | None -> ())
      tree.top
  done;
  Report.make ~matched ~received:!received ~publisher:from ~messages:!messages
    ~max_hops:!max_hops

let max_degree t =
  Array.fold_left
    (fun acc tree ->
      Hashtbl.fold
        (fun _ node acc -> max acc (Int_set.cardinal node.children))
        tree.nodes
        (max acc (Int_set.cardinal tree.top)))
    0 t.trees
