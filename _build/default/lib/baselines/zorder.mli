(** Z-order (Morton) mapping of a bounded attribute space onto a
    one-dimensional key space — the "mapping of complex filters to
    uni-dimensional name spaces" (§4) that DHT-based pub/sub relies
    on. *)

type t

val create : ?bits_per_dim:int -> space:Geometry.Rect.t -> unit -> t
(** [bits_per_dim] (default 4): the grid has [2^bits_per_dim] cells
    per dimension. [space] must be finite in every dimension.
    @raise Invalid_argument on unbounded space or bits outside
    [1, 10]. *)

val dims : t -> int
val cells_per_dim : t -> int

val total_cells : t -> int

val point_key : t -> Geometry.Point.t -> int
(** Z-key of the cell containing the point (clamped to the space). *)

val rect_keys : t -> Geometry.Rect.t -> int list
(** Z-keys of every cell the rectangle overlaps (clipped to the
    space). *)

val cell_rect : t -> int -> Geometry.Rect.t
(** The spatial extent of the cell with the given Z-key.
    @raise Invalid_argument when the key is out of range. *)
