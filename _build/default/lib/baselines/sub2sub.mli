(** Baseline: gossip-based semantic overlay (Sub-2-Sub-style,
    Voulgaris et al. [20], discussed in §4).

    Subscribers gossip to cluster with peers whose filters overlap
    theirs: each keeps a {e semantic view} (the most-overlapping peers
    seen so far) plus a few uniformly random links (the peer-sampling
    service such systems assume). An event floods through matching
    nodes only: the publisher hands it to its whole view; matching
    recipients forward to their own views; non-matching recipients
    drop it.

    Accuracy is {e emergent}: a subscriber is reached only if the
    subgraph induced by the event's matchers (plus the publisher's
    first hop) connects it to the publisher. Before the gossip
    converges — and for isolated interests — events are lost. This is
    the §4 critique measured: DHT-free gossip designs "suffer from …
    the loss of accuracy (apparition of false negatives …)", where the
    DR-tree guarantees none. *)

type t

val create : ?view_size:int -> ?random_size:int -> seed:int -> unit -> t
(** [view_size] (default 8): semantic neighbors kept per node;
    [random_size] (default 3): random links refreshed every round. *)

val add : t -> Geometry.Rect.t -> int
(** Register a subscriber with an empty view; gossip integrates it. *)

val remove : t -> int -> unit
val size : t -> int

val gossip_round : t -> unit
(** One push-pull exchange at every node (id order): merge views with
    a random peer, keep the [view_size] most-overlapping candidates,
    refresh random links. *)

val gossip : t -> rounds:int -> unit

val publish : t -> from:int -> Geometry.Point.t -> Report.t
(** Flood within the matching subgraph. False negatives are expected
    until the overlay converges (and possible after — that is the
    point of this baseline). *)

val mean_view_overlap : t -> float
(** Mean over nodes of the fraction of their semantic view whose
    filter overlaps theirs — a convergence indicator (1.0 = fully
    semantic views). *)
