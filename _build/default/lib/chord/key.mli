(** Chord identifier circle.

    Keys live on a ring of size [2^bits] (24 bits here: ample for the
    simulated populations). All interval tests are circular. *)

val bits : int
(** Number of bits of the identifier space (24). *)

val space : int
(** [2^bits]. *)

type t = int
(** A key in [0, space). *)

val of_int : int -> t
(** Reduce modulo the key space (negative inputs allowed). *)

val hash_node : int -> t
(** Deterministic, well-mixed key for a node id. *)

val add_pow2 : t -> int -> t
(** [add_pow2 k i] is [k + 2^i mod space] — the [i]-th finger start. *)

val in_open : t -> lo:t -> hi:t -> bool
(** [in_open k ~lo ~hi]: is [k] in the circular open interval
    (lo, hi)? Empty when [lo = hi]... except the full circle reading:
    following Chord's convention, when [lo = hi] the interval is the
    whole ring minus the endpoint. *)

val in_half_open : t -> lo:t -> hi:t -> bool
(** [(lo, hi]] circularly; when [lo = hi] it is the full ring. *)

val distance : t -> t -> int
(** Clockwise distance from the first key to the second. *)

val pp : Format.formatter -> t -> unit
