(** A Chord ring over the simulation engine.

    The classical DHT substrate (Stoica et al.) that the DHT-based
    publish/subscribe systems of the paper's §4 (Scribe, Meghdoot,
    Bayeux) build on. Lookups are {e routed} — each forwarding step is
    a real simulator message, so hop counts and failure behaviour are
    measured, not modelled. Ring maintenance (successor repair,
    predecessor notification, finger refresh) runs in explicit rounds,
    mirroring how the DR-tree's stabilization is driven; finger tables
    are refreshed from an idealized global view, which can only
    {e flatter} this baseline.

    Nodes can crash at any time; each node keeps a successor list of
    length [succ_len] for resilience, and {!stabilize_round} repairs
    the ring — the machinery whose churn resistance E19 compares
    against the DR-tree's. *)

type t

val create : ?succ_len:int -> seed:int -> unit -> t
(** [succ_len] (default 4) is the successor-list length. *)

val join : t -> Sim.Node_id.t
(** Spawn a node, position it via a routed lookup through a random
    live contact, and let it be absorbed by the next stabilization
    rounds. Runs the engine. *)

val crash : t -> Sim.Node_id.t -> unit

val size : t -> int
val alive_ids : t -> Sim.Node_id.t list
val key_of : t -> Sim.Node_id.t -> Key.t option

val successors_of : t -> Sim.Node_id.t -> Sim.Node_id.t list
(** The node's current successor list (nearest first); [[]] for dead
    or unknown nodes. For tests and debugging. *)

val predecessor_of : t -> Sim.Node_id.t -> Sim.Node_id.t option

val lookup : t -> from:Sim.Node_id.t -> Key.t -> (Sim.Node_id.t * int) option
(** [lookup t ~from k] routes a find-successor request from [from];
    returns the owner and the hop count, or [None] when routing died
    (a dead end through crashed nodes — the failure mode churn
    causes). Runs the engine. *)

val owner_of : t -> Key.t -> Sim.Node_id.t option
(** Ground truth: the live node whose key is the first at or after
    [k] on the circle. *)

val stabilize_round : t -> unit
(** One maintenance round at every live node: prune dead successors,
    adopt the successor's predecessor when closer, notify, refresh the
    successor list and fingers. *)

val stabilize : ?max_rounds:int -> t -> int option
(** Rounds until {!is_consistent} (default max 50). *)

val is_consistent : t -> bool
(** Every live node's first successor is the next live key on the
    circle (the ring invariant). *)

val messages_sent : t -> int
val reset_counters : t -> unit
