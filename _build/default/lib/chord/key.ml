let bits = 24
let space = 1 lsl bits

type t = int

let of_int x =
  let r = x mod space in
  if r < 0 then r + space else r

(* splitmix-style mixing so consecutive node ids scatter uniformly. *)
let hash_node id =
  let x = ref (id * 0x9e3779b9) in
  x := (!x lxor (!x lsr 16)) * 0x85ebca6b;
  x := (!x lxor (!x lsr 13)) * 0xc2b2ae35;
  x := !x lxor (!x lsr 16);
  of_int !x

let add_pow2 k i = of_int (k + (1 lsl i))

let distance a b =
  let d = (b - a) mod space in
  if d < 0 then d + space else d

let in_open k ~lo ~hi =
  if lo = hi then k <> lo
  else
    let dk = distance lo k and dhi = distance lo hi in
    dk > 0 && dk < dhi

let in_half_open k ~lo ~hi =
  if lo = hi then true
  else
    let dk = distance lo k and dhi = distance lo hi in
    dk > 0 && dk <= dhi

let pp ppf k = Format.fprintf ppf "k%06x" k
