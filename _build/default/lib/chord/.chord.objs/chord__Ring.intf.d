lib/chord/ring.mli: Key Sim
