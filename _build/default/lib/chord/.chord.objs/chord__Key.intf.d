lib/chord/key.mli: Format
