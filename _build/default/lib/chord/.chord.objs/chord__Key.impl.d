lib/chord/key.ml: Format
