lib/chord/ring.ml: Array Hashtbl Int Key List Option Sim
