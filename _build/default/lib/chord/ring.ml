module Node_id = Sim.Node_id
module Engine = Sim.Engine

type msg =
  | Lookup of { target : Key.t; request : int; origin : Node_id.t; hops : int }
  | Lookup_result of { request : int; owner : Node_id.t; hops : int }

type node_state = {
  key : Key.t;
  mutable successors : Node_id.t list;  (** nearest first; never empty *)
  mutable predecessor : Node_id.t option;
  fingers : Node_id.t option array;
}

type t = {
  succ_len : int;
  engine : msg Engine.t;
  states : node_state Node_id.Table.t;
  results : (int, (Node_id.t * int) option) Hashtbl.t;
  mutable next_request : int;
  rng : Sim.Rng.t;
}

let is_alive t id = Engine.is_alive t.engine id

let read t id =
  if is_alive t id then Node_id.Table.find_opt t.states id else None

let alive_ids t =
  List.filter
    (fun id -> Node_id.Table.mem t.states id)
    (Engine.alive_nodes t.engine)

let size t = List.length (alive_ids t)
let key_of t id = Option.map (fun s -> s.key) (read t id)

let successors_of t id =
  match read t id with Some s -> s.successors | None -> []

let predecessor_of t id =
  match read t id with Some s -> s.predecessor | None -> None

let sorted_live t =
  List.sort
    (fun (_, a) (_, b) -> Int.compare a b)
    (List.filter_map
       (fun id -> Option.map (fun s -> (id, s.key)) (read t id))
       (alive_ids t))

(* Ground truth: first live key at or after [k] on the circle. *)
let owner_of t k =
  match sorted_live t with
  | [] -> None
  | ((first, _) :: _ : (Node_id.t * Key.t) list) as nodes -> (
      match List.find_opt (fun (_, key) -> key >= k) nodes with
      | Some (id, _) -> Some id
      | None -> Some first)

let first_live_successor t s =
  List.find_opt (fun id -> is_alive t id) s.successors

(* Closest preceding live node for [target] among fingers and
   successors — Chord's routing step. *)
let closest_preceding t s ~self_key ~target =
  let best = ref None in
  let consider id =
    match read t id with
    | Some st when Key.in_open st.key ~lo:self_key ~hi:target -> (
        match !best with
        | Some (_, bk) when Key.distance bk target <= Key.distance st.key target
          ->
            ()
        | _ -> best := Some (id, st.key))
    | Some _ | None -> ()
  in
  Array.iter (function Some id -> consider id | None -> ()) s.fingers;
  List.iter consider s.successors;
  Option.map fst !best

let handle t ctx msg =
  let self = Engine.self ctx in
  match read t self with
  | None -> ()
  | Some s -> (
      match msg with
      | Lookup { target; request; origin; hops } -> (
          if hops > 3 * Key.bits then
            (* routing loop through stale pointers: give up; the
               requester observes a failed lookup *)
            ()
          else
            match first_live_successor t s with
            | None -> () (* marooned node: dead end *)
            | Some succ ->
                let succ_key =
                  match read t succ with Some st -> st.key | None -> s.key
                in
                if Key.in_half_open target ~lo:s.key ~hi:succ_key then
                  Engine.send ctx origin
                    (Lookup_result { request; owner = succ; hops = hops + 1 })
                else
                  let next =
                    match closest_preceding t s ~self_key:s.key ~target with
                    | Some id -> id
                    | None -> succ
                  in
                  Engine.send ctx next
                    (Lookup { target; request; origin; hops = hops + 1 }))
      | Lookup_result { request; owner; hops } ->
          Hashtbl.replace t.results request (Some (owner, hops)))

let create ?(succ_len = 4) ~seed () =
  if succ_len < 1 then invalid_arg "Chord.Ring.create: succ_len < 1";
  let t =
    {
      succ_len;
      engine = Engine.create ~seed ();
      states = Node_id.Table.create 256;
      results = Hashtbl.create 64;
      next_request = 0;
      rng = Sim.Rng.make (seed lxor 0xc40d);
    }
  in
  t

let run t = ignore (Engine.run t.engine)

let lookup t ~from target =
  if not (is_alive t from) then None
  else begin
    let request = t.next_request in
    t.next_request <- request + 1;
    Hashtbl.replace t.results request None;
    Engine.inject t.engine ~dst:from
      (Lookup { target; request; origin = from; hops = 0 });
    run t;
    let r = Hashtbl.find_opt t.results request in
    Hashtbl.remove t.results request;
    Option.join r
  end

let join t =
  let id = Engine.spawn t.engine (fun ctx msg -> handle t ctx msg) in
  let key = Key.hash_node id in
  let s =
    {
      key;
      successors = [ id ];
      predecessor = None;
      fingers = Array.make Key.bits None;
    }
  in
  Node_id.Table.replace t.states id s;
  (match List.filter (fun o -> o <> id) (alive_ids t) with
  | [] -> () (* first node: its own successor *)
  | others -> (
      let contact = Sim.Rng.pick t.rng others in
      match lookup t ~from:contact key with
      | Some (owner, _) -> s.successors <- [ owner ]
      | None -> (
          (* routed bootstrap failed (e.g. churn mid-join): fall back
             to the contact itself; stabilization will position us *)
          match read t contact with
          | Some _ -> s.successors <- [ contact ]
          | None -> ())));
  run t;
  id

let crash t id = Engine.kill t.engine id

(* One Chord maintenance round (stabilize + notify + fix_fingers for
   every node, in id order). Fingers are refreshed from the global
   view — idealized maintenance that can only flatter this baseline in
   comparisons. *)
let stabilize_round t =
  let nodes = sorted_live t in
  let arr = Array.of_list nodes in
  let n = Array.length arr in
  let owner_idx k =
    (* first index with key >= k, else 0 *)
    let rec go i = if i >= n then 0 else if snd arr.(i) >= k then i else go (i + 1) in
    go 0
  in
  List.iter
    (fun id ->
      match read t id with
      | None -> ()
      | Some s ->
          (* prune dead successors *)
          s.successors <- List.filter (fun x -> is_alive t x) s.successors;
          if s.successors = [] then begin
            (* lost the whole list: rejoin the circle via the global
               view's successor (models re-bootstrap via the oracle) *)
            if n > 0 then
              s.successors <- [ fst arr.(owner_idx (Key.of_int (s.key + 1))) ]
          end;
          (* adopt successor's predecessor when it sits between *)
          (match first_live_successor t s with
          | Some succ -> (
              match read t succ with
              | Some ss -> (
                  (match ss.predecessor with
                  | Some p when is_alive t p -> (
                      match read t p with
                      | Some ps
                        when Key.in_open ps.key ~lo:s.key ~hi:ss.key ->
                          s.successors <- p :: s.successors
                      | Some _ | None -> ())
                  | Some _ | None -> ());
                  (* notify *)
                  let succ = List.hd s.successors in
                  match read t succ with
                  | Some ss2 ->
                      let should =
                        match ss2.predecessor with
                        | Some p when is_alive t p -> (
                            match read t p with
                            | Some ps ->
                                Key.in_open s.key ~lo:ps.key ~hi:ss2.key
                            | None -> true)
                        | Some _ | None -> true
                      in
                      if should && not (Node_id.equal succ id) then
                        ss2.predecessor <- Some id
                  | None -> ())
              | None -> ())
          | None -> ());
          (* extend the successor list from the successor's list *)
          (match first_live_successor t s with
          | Some succ -> (
              match read t succ with
              | Some ss ->
                  let merged =
                    succ
                    :: List.filter (fun x -> is_alive t x && x <> id) ss.successors
                  in
                  let rec dedup seen = function
                    | [] -> []
                    | x :: rest ->
                        if List.mem x seen then dedup seen rest
                        else x :: dedup (x :: seen) rest
                  in
                  s.successors <-
                    List.filteri (fun i _ -> i < t.succ_len) (dedup [] merged)
              | None -> ())
          | None -> ());
          (* Partition guard: crashes can leave two locally-consistent
             disjoint cycles that notify/adopt alone never merge; the
             bootstrap oracle (the same global view the fingers use)
             reveals the true next neighbour. *)
          (if n > 1 then begin
             let true_next = fst arr.(owner_idx (Key.of_int (s.key + 1))) in
             if not (Node_id.equal true_next id) then
               match first_live_successor t s with
               | Some succ when not (Node_id.equal succ true_next) ->
                   s.successors <- true_next :: s.successors
               | None -> s.successors <- [ true_next ]
               | Some _ -> ()
           end);
          (* refresh fingers from the global view *)
          if n > 0 then
            for i = 0 to Key.bits - 1 do
              let start = Key.add_pow2 s.key i in
              s.fingers.(i) <- Some (fst arr.(owner_idx start))
            done)
    (alive_ids t)

let is_consistent t =
  match sorted_live t with
  | [] -> true
  | nodes ->
      let arr = Array.of_list nodes in
      let n = Array.length arr in
      let ok = ref true in
      Array.iteri
        (fun i (id, _) ->
          let expected = fst arr.((i + 1) mod n) in
          match read t id with
          | Some s -> (
              match first_live_successor t s with
              | Some succ ->
                  if not (Node_id.equal succ expected) then ok := false
              | None -> if n > 1 then ok := false)
          | None -> ok := false)
        arr;
      !ok

let stabilize ?(max_rounds = 50) t =
  let rec loop r =
    if is_consistent t then Some r
    else if r >= max_rounds then None
    else begin
      stabilize_round t;
      loop (r + 1)
    end
  in
  loop 0

let messages_sent t = Engine.messages_sent t.engine
let reset_counters t = Engine.reset_counters t.engine
