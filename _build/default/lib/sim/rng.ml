type t = Random.State.t

let make seed = Random.State.make [| seed; 0x5eed; seed lxor 0x2b992ddf |]
let split rng = Random.State.make [| Random.State.bits rng; Random.State.bits rng |]
let copy = Random.State.copy

let int rng n =
  if n <= 0 then invalid_arg "Rng.int: non-positive bound";
  Random.State.int rng n

let float rng x = Random.State.float rng x
let bool rng = Random.State.bool rng
let range rng lo hi = lo +. Random.State.float rng (hi -. lo)

let pick rng = function
  | [] -> invalid_arg "Rng.pick: empty list"
  | xs -> List.nth xs (int rng (List.length xs))

let pick_array rng arr =
  if Array.length arr = 0 then invalid_arg "Rng.pick_array: empty array";
  arr.(int rng (Array.length arr))

let shuffle rng xs =
  let arr = Array.of_list xs in
  for i = Array.length arr - 1 downto 1 do
    let j = int rng (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done;
  Array.to_list arr

let exponential rng ~rate =
  if rate <= 0.0 then invalid_arg "Rng.exponential: non-positive rate";
  let u = 1.0 -. Random.State.float rng 1.0 (* u in (0, 1] *) in
  -.log u /. rate

let gaussian rng ~mean ~stddev =
  let u1 = 1.0 -. Random.State.float rng 1.0 in
  let u2 = Random.State.float rng 1.0 in
  mean +. (stddev *. sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2))

let poisson rng ~mean =
  if mean < 0.0 then invalid_arg "Rng.poisson: negative mean";
  if mean > 500.0 then
    (* Normal approximation for large means. *)
    max 0 (int_of_float (Float.round (gaussian rng ~mean ~stddev:(sqrt mean))))
  else begin
    let limit = exp (-.mean) in
    let k = ref 0 and p = ref 1.0 in
    let continue = ref true in
    while !continue do
      p := !p *. Random.State.float rng 1.0;
      if !p <= limit then continue := false else incr k
    done;
    !k
  end

(* Rejection-inversion sampling for the Zipf distribution
   (W. Hörmann, G. Derflinger, 1996). Exact and O(1) amortized per
   draw, no per-(n,s) table needed. *)
let zipf rng ~n ~s =
  if n <= 0 then invalid_arg "Rng.zipf: n <= 0";
  if s < 0.0 then invalid_arg "Rng.zipf: negative exponent";
  if n = 1 then 1
  else if s = 0.0 then 1 + int rng n
  else begin
    let nf = float_of_int n in
    let h x = if Float.abs (1.0 -. s) < 1e-12 then log x else (x ** (1.0 -. s)) /. (1.0 -. s) in
    let h_inv y =
      if Float.abs (1.0 -. s) < 1e-12 then exp y
      else ((1.0 -. s) *. y) ** (1.0 /. (1.0 -. s))
    in
    let hx0 = h 0.5 -. (1.0 /. (0.5 ** s)) in
    let hn = h (nf +. 0.5) in
    let rec draw () =
      let u = hx0 +. Random.State.float rng (hn -. hx0) in
      let x = h_inv u in
      let k = Float.round x in
      let k = Float.max 1.0 (Float.min nf k) in
      if u >= h (k +. 0.5) -. (1.0 /. (k ** s)) then int_of_float k else draw ()
    in
    draw ()
  end
