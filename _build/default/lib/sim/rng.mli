(** Deterministic random number generation.

    Every stochastic choice in the simulator and the workload
    generators draws from an explicit [Rng.t], so a run is a pure
    function of its seed. *)

type t

val make : int -> t
(** [make seed] is a generator seeded with [seed]. *)

val split : t -> t
(** [split rng] is a new generator whose stream is derived from (and
    independent of subsequent draws on) [rng]. Use it to give
    subsystems their own streams. *)

val copy : t -> t
(** An independent generator in the same state. *)

val int : t -> int -> int
(** [int rng n] is uniform on [0, n). @raise Invalid_argument if
    [n <= 0]. *)

val float : t -> float -> float
(** [float rng x] is uniform on [0, x). *)

val bool : t -> bool

val range : t -> float -> float -> float
(** [range rng lo hi] is uniform on [lo, hi). *)

val pick : t -> 'a list -> 'a
(** Uniform choice. @raise Invalid_argument on []. *)

val pick_array : t -> 'a array -> 'a

val shuffle : t -> 'a list -> 'a list
(** Fisher–Yates permutation. *)

val exponential : t -> rate:float -> float
(** Sample of an exponential distribution with the given [rate]
    (mean [1/rate]). Inter-arrival times of a Poisson process. *)

val poisson : t -> mean:float -> int
(** Sample of a Poisson distribution (Knuth's method for small means,
    normal approximation above 500). *)

val gaussian : t -> mean:float -> stddev:float -> float
(** Box–Muller sample. *)

val zipf : t -> n:int -> s:float -> int
(** [zipf rng ~n ~s] samples a rank in [1, n] under a Zipf law with
    exponent [s] (by inverse transform on the precomputed CDF would be
    costly to rebuild per draw; this uses rejection-inversion, cheap
    and exact). *)
