(** Process identifiers.

    Dense integers handed out by the engine in spawn order. *)

type t = int

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int
val pp : Format.formatter -> t -> unit
val to_string : t -> string

module Set : Set.S with type elt = t
module Map : Map.S with type key = t
module Table : Hashtbl.S with type key = t
