lib/sim/node_id.mli: Format Hashtbl Map Set
