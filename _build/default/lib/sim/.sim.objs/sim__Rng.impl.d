lib/sim/rng.ml: Array Float List Random
