lib/sim/engine.mli: Node_id Rng
