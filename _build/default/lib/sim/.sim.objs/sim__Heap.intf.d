lib/sim/heap.mli:
