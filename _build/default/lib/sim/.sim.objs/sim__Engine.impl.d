lib/sim/engine.ml: Float Heap Node_id Rng
