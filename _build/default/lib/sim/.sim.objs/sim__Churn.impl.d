lib/sim/churn.ml: Format List Rng
