lib/sim/rng.mli:
