lib/sim/churn.mli: Format Rng
