type t = int

let equal = Int.equal
let compare = Int.compare
let hash x = x
let pp ppf id = Format.fprintf ppf "n%d" id
let to_string id = Format.asprintf "%a" pp id

module Set = Set.Make (Int)
module Map = Map.Make (Int)

module Table = Hashtbl.Make (struct
  type nonrec t = t

  let equal = equal
  let hash = hash
end)
