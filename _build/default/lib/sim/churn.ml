type action = Join | Leave

let pp_action ppf = function
  | Join -> Format.pp_print_string ppf "join"
  | Leave -> Format.pp_print_string ppf "leave"

let trace rng ~join_rate ~leave_rate ~horizon =
  if join_rate < 0.0 || leave_rate < 0.0 then
    invalid_arg "Churn.trace: negative rate";
  let total = join_rate +. leave_rate in
  if total <= 0.0 then invalid_arg "Churn.trace: both rates zero";
  let p_join = join_rate /. total in
  let rec loop time acc =
    let time = time +. Rng.exponential rng ~rate:total in
    if time >= horizon then List.rev acc
    else
      let action = if Rng.float rng 1.0 < p_join then Join else Leave in
      loop time ((time, action) :: acc)
  in
  loop 0.0 []

let departure_times rng ~rate ~count =
  if rate <= 0.0 then invalid_arg "Churn.departure_times: non-positive rate";
  if count < 0 then invalid_arg "Churn.departure_times: negative count";
  let rec loop time k acc =
    if k = 0 then List.rev acc
    else
      let time = time +. Rng.exponential rng ~rate in
      loop time (k - 1) (time :: acc)
  in
  loop 0.0 count []
