(** Churn traces.

    The paper models arrivals and departures as Poisson processes
    (Lemma 3.7). This module samples merged join/leave traces to
    drive churn experiments. *)

type action = Join | Leave

val pp_action : Format.formatter -> action -> unit

val trace :
  Rng.t ->
  join_rate:float ->
  leave_rate:float ->
  horizon:float ->
  (float * action) list
(** [trace rng ~join_rate ~leave_rate ~horizon] samples the merged
    Poisson process on [0, horizon): event times are exponential with
    rate [join_rate +. leave_rate]; each event is a join with
    probability [join_rate / (join_rate +. leave_rate)]. Sorted by
    time. Rates must be non-negative and not both zero. *)

val departure_times : Rng.t -> rate:float -> count:int -> float list
(** [departure_times rng ~rate ~count] is the first [count] arrival
    times of a Poisson process with the given rate (sorted). Used by
    the churn-resistance experiment, which only needs departures. *)
