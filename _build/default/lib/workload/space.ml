type t = { dims : int; lo : float; hi : float }

let default = { dims = 2; lo = 0.0; hi = 100.0 }

let make ?(dims = default.dims) ?(lo = default.lo) ?(hi = default.hi) () =
  if dims < 1 then invalid_arg "Space.make: dims < 1";
  if hi <= lo then invalid_arg "Space.make: hi <= lo";
  { dims; lo; hi }

let width s = s.hi -. s.lo

let rect s =
  Geometry.Rect.make ~low:(Array.make s.dims s.lo) ~high:(Array.make s.dims s.hi)

let random_point s rng =
  Geometry.Point.make (Array.init s.dims (fun _ -> Sim.Rng.range rng s.lo s.hi))

let clamp s x = Float.max s.lo (Float.min s.hi x)
