(** Subscription (filter rectangle) workloads.

    Each generator produces [count] filter rectangles inside a
    {!Space.t}. The catalog covers the workload classes relevant to the
    paper's claims: uniform interests, clustered communities of
    interest, containment-rich hierarchies (where Properties 3.1/3.2
    bite), and size-skewed mixtures. *)

type gen = Space.t -> Sim.Rng.t -> int -> Geometry.Rect.t list

val uniform : ?min_extent:float -> ?max_extent:float -> unit -> gen
(** Centers uniform in the universe; each extent uniform in
    [min_extent, max_extent) (defaults: 1% and 10% of the universe
    width). *)

val clustered : ?clusters:int -> ?spread:float -> ?max_extent:float -> unit -> gen
(** Interests gather around [clusters] (default 5) uniformly-placed
    hot centers with Gaussian [spread] (default 5% of width). Models
    semantic communities (§1). *)

val containment : ?roots:int -> ?shrink:float -> unit -> gen
(** Containment-chain workload: [roots] (default 8) large rectangles;
    each subsequent filter nests inside a random earlier one, scaled
    by [shrink] (default 0.6). Produces a deep containment partial
    order, like Figure 1. *)

val skewed : ?alpha:float -> unit -> gen
(** Pareto-distributed extents (shape [alpha], default 1.5): a few
    subscribers watch huge regions, most watch tiny ones — the regime
    where largest-MBR root election matters. *)

val point_interests : gen
(** Degenerate rectangles (equality filters only). *)

val catalog : (string * gen) list
(** The named workloads used by experiment E5:
    uniform, clustered, containment, skewed, points. *)
