(** Event (point) workloads.

    Generators of publication points. [targeted] and [hotspot] model
    the biased workloads of §3.2 ("Dynamic Reorganizations"): events
    concentrate where some subscribers are interested, so routing
    accuracy differences show. *)

type gen = Space.t -> Sim.Rng.t -> int -> Geometry.Point.t list

val uniform : gen
(** Uniform over the universe. *)

val hotspot : ?fraction:float -> ?radius:float -> unit -> gen
(** [fraction] (default 0.8) of events fall within a ball of [radius]
    (default 10% of width) around one random hot point; the rest are
    uniform. *)

val zipf_grid : ?cells:int -> ?s:float -> unit -> gen
(** The universe is divided into [cells × ... × cells] buckets
    (default 10 per dimension) ranked in row-major order; events pick
    a bucket by a Zipf law with exponent [s] (default 1.0) and a
    uniform point inside it. *)

val targeted : Geometry.Rect.t list -> hit_rate:float -> gen
(** [targeted subs ~hit_rate]: with probability [hit_rate] the event
    falls uniformly inside a random subscription rectangle (a
    deliverable event); otherwise uniformly in the universe.
    @raise Invalid_argument if [subs] is empty or [hit_rate] outside
    [0, 1]. *)

val catalog :
  subscriptions:Geometry.Rect.t list -> (string * gen) list
(** uniform, hotspot, zipf and targeted(0.7) over the given
    subscription set — the event sides of experiment E5. *)
