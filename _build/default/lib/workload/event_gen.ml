module Point = Geometry.Point
module Rect = Geometry.Rect
module Rng = Sim.Rng

type gen = Space.t -> Rng.t -> int -> Point.t list

let uniform space rng count =
  List.init count (fun _ -> Space.random_point space rng)

let hotspot ?(fraction = 0.8) ?radius () space rng count =
  if fraction < 0.0 || fraction > 1.0 then
    invalid_arg "Event_gen.hotspot: fraction outside [0, 1]";
  let radius = Option.value radius ~default:(0.1 *. Space.width space) in
  let hot =
    Array.init space.Space.dims (fun _ ->
        Rng.range rng space.Space.lo space.Space.hi)
  in
  List.init count (fun _ ->
      if Rng.float rng 1.0 < fraction then
        Point.make
          (Array.map
             (fun x ->
               Space.clamp space (x +. Rng.range rng (-.radius) radius))
             hot)
      else Space.random_point space rng)

let zipf_grid ?(cells = 10) ?(s = 1.0) () space rng count =
  if cells < 1 then invalid_arg "Event_gen.zipf_grid: cells < 1";
  let d = space.Space.dims in
  let total = int_of_float (float_of_int cells ** float_of_int d) in
  let cell_width = Space.width space /. float_of_int cells in
  List.init count (fun _ ->
      let rank = Rng.zipf rng ~n:total ~s - 1 in
      let coords = Array.make d 0.0 in
      let rem = ref rank in
      for i = 0 to d - 1 do
        let idx = !rem mod cells in
        rem := !rem / cells;
        let lo = space.Space.lo +. (float_of_int idx *. cell_width) in
        coords.(i) <- lo +. Rng.float rng cell_width
      done;
      Point.make coords)

let targeted subs ~hit_rate space rng count =
  if subs = [] then invalid_arg "Event_gen.targeted: no subscriptions";
  if hit_rate < 0.0 || hit_rate > 1.0 then
    invalid_arg "Event_gen.targeted: hit_rate outside [0, 1]";
  let subs = Array.of_list subs in
  List.init count (fun _ ->
      if Rng.float rng 1.0 < hit_rate then begin
        let r = subs.(Rng.int rng (Array.length subs)) in
        let d = Rect.dims r in
        Point.make
          (Array.init d (fun i ->
               let lo = Rect.low r i and hi = Rect.high r i in
               if hi > lo then Rng.range rng lo hi else lo))
      end
      else Space.random_point space rng)

let catalog ~subscriptions =
  [
    ("uniform", uniform);
    ("hotspot", hotspot ());
    ("zipf", zipf_grid ());
    ("targeted", targeted subscriptions ~hit_rate:0.7);
  ]
