lib/workload/subscription_gen.mli: Geometry Sim Space
