lib/workload/event_gen.mli: Geometry Sim Space
