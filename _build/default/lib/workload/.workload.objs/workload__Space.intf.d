lib/workload/space.mli: Geometry Sim
