lib/workload/subscription_gen.ml: Array Float Geometry List Option Sim Space
