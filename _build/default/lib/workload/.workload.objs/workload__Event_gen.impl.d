lib/workload/event_gen.ml: Array Geometry List Option Sim Space
