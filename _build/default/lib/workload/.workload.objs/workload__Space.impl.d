lib/workload/space.ml: Array Float Geometry Sim
