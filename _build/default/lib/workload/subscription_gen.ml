module Rect = Geometry.Rect
module Rng = Sim.Rng

type gen = Space.t -> Rng.t -> int -> Rect.t list

let rect_around space center extents =
  let d = space.Space.dims in
  let low =
    Array.init d (fun i -> Space.clamp space (center.(i) -. (extents.(i) /. 2.0)))
  in
  let high =
    Array.init d (fun i ->
        Float.max low.(i)
          (Space.clamp space (center.(i) +. (extents.(i) /. 2.0))))
  in
  Rect.make ~low ~high

let uniform ?min_extent ?max_extent () space rng count =
  let w = Space.width space in
  let min_extent = Option.value min_extent ~default:(0.01 *. w) in
  let max_extent = Option.value max_extent ~default:(0.1 *. w) in
  List.init count (fun _ ->
      let center =
        Array.init space.Space.dims (fun _ ->
            Rng.range rng space.Space.lo space.Space.hi)
      in
      let extents =
        Array.init space.Space.dims (fun _ ->
            Rng.range rng min_extent max_extent)
      in
      rect_around space center extents)

let clustered ?(clusters = 5) ?spread ?max_extent () space rng count =
  if clusters < 1 then invalid_arg "Subscription_gen.clustered: clusters < 1";
  let w = Space.width space in
  let spread = Option.value spread ~default:(0.05 *. w) in
  let max_extent = Option.value max_extent ~default:(0.08 *. w) in
  let centers =
    Array.init clusters (fun _ ->
        Array.init space.Space.dims (fun _ ->
            Rng.range rng space.Space.lo space.Space.hi))
  in
  List.init count (fun _ ->
      let c = centers.(Rng.int rng clusters) in
      let center =
        Array.map
          (fun x -> Space.clamp space (Rng.gaussian rng ~mean:x ~stddev:spread))
          c
      in
      let extents =
        Array.init space.Space.dims (fun _ ->
            Rng.range rng (0.005 *. w) max_extent)
      in
      rect_around space center extents)

let containment ?(roots = 8) ?(shrink = 0.6) () space rng count =
  if roots < 1 then invalid_arg "Subscription_gen.containment: roots < 1";
  if shrink <= 0.0 || shrink >= 1.0 then
    invalid_arg "Subscription_gen.containment: shrink outside (0, 1)";
  let w = Space.width space in
  let acc = ref [] in
  let made = ref 0 in
  while !made < count do
    let r =
      if !made < roots || !acc = [] then begin
        (* A fresh large root region. *)
        let center =
          Array.init space.Space.dims (fun _ ->
              Rng.range rng space.Space.lo space.Space.hi)
        in
        let extents =
          Array.init space.Space.dims (fun _ -> Rng.range rng (0.2 *. w) (0.45 *. w))
        in
        rect_around space center extents
      end
      else begin
        (* Nest inside a random earlier filter. *)
        let parent = Rng.pick rng !acc in
        let d = Rect.dims parent in
        let low = Array.make d 0.0 and high = Array.make d 0.0 in
        for i = 0 to d - 1 do
          let plo = Rect.low parent i and phi = Rect.high parent i in
          let extent = (phi -. plo) *. shrink in
          let slack = (phi -. plo) -. extent in
          let off = if slack > 0.0 then Rng.float rng slack else 0.0 in
          low.(i) <- plo +. off;
          high.(i) <- plo +. off +. extent
        done;
        Rect.make ~low ~high
      end
    in
    acc := r :: !acc;
    incr made
  done;
  List.rev !acc

let pareto rng ~alpha ~scale =
  let u = 1.0 -. Rng.float rng 1.0 in
  scale /. (u ** (1.0 /. alpha))

let skewed ?(alpha = 1.5) () space rng count =
  if alpha <= 0.0 then invalid_arg "Subscription_gen.skewed: alpha <= 0";
  let w = Space.width space in
  List.init count (fun _ ->
      let center =
        Array.init space.Space.dims (fun _ ->
            Rng.range rng space.Space.lo space.Space.hi)
      in
      let extents =
        Array.init space.Space.dims (fun _ ->
            Float.min (0.9 *. w) (pareto rng ~alpha ~scale:(0.005 *. w)))
      in
      rect_around space center extents)

let point_interests space rng count =
  List.init count (fun _ ->
      Rect.of_point (Space.random_point space rng))

let catalog =
  [
    ("uniform", uniform ());
    ("clustered", clustered ());
    ("containment", containment ());
    ("skewed", skewed ());
    ("points", point_interests);
  ]
