(** The attribute space experiments run in.

    All generators draw from a bounded universe; [0, 100]^d by
    default, matching the two-attribute examples of the paper's
    Figure 1. *)

type t = { dims : int; lo : float; hi : float }

val default : t
(** [{dims = 2; lo = 0.; hi = 100.}] *)

val make : ?dims:int -> ?lo:float -> ?hi:float -> unit -> t
(** @raise Invalid_argument if [dims < 1] or [hi <= lo]. *)

val width : t -> float

val rect : t -> Geometry.Rect.t
(** The universe as a rectangle. *)

val random_point : t -> Sim.Rng.t -> Geometry.Point.t
(** Uniform point in the universe. *)

val clamp : t -> float -> float
(** Clamp a coordinate into the universe. *)
