(** Attribute values.

    Events carry a value per attribute (§2.1). Values are typed; for
    spatial embedding every value maps to a float coordinate. *)

type t =
  | Int of int
  | Float of float
  | String of string
      (** Strings only support equality predicates; they embed into the
          spatial domain through a stable hash (see {!to_float}). *)

val int : int -> t
val float : float -> t
val string : string -> t

val equal : t -> t -> bool
(** Structural equality. [Int 1] and [Float 1.] are {e not} equal. *)

val compare_numeric : t -> t -> int option
(** [compare_numeric a b] is the numeric order of [a] and [b] when both
    are numeric ([Int] or [Float]); [None] if either is a string. *)

val to_float : t -> float
(** Spatial embedding: [Int n] is [float_of_int n]; [Float f] is [f];
    [String s] is a stable hash of [s] folded into [0, 1e9). Strings
    hash deterministically across runs. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
