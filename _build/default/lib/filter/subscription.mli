(** Subscriptions (content-based filters).

    A subscription is a conjunction of predicates (§2.1). Under a
    schema it embeds into a poly-space rectangle: the conjunction of
    the per-attribute intervals, unbounded in any dimension whose
    attribute the filter leaves unconstrained. *)

type t

val make : Predicate.t list -> t
(** [make preds] is the conjunction of [preds]. Multiple predicates on
    the same attribute intersect. @raise Invalid_argument on the empty
    list or if two predicates on one attribute are contradictory
    (empty spatial intersection). *)

val of_rect : Schema.t -> Geometry.Rect.t -> t
(** [of_rect schema r] is the subscription whose predicate on each
    schema attribute is the (possibly one-sided or unbounded) range
    given by [r]'s corresponding dimension. Fully unbounded dimensions
    yield no predicate; if every dimension is unbounded the result is
    a single always-true [Between] over the first attribute.
    @raise Invalid_argument on dimension mismatch. *)

val predicates : t -> Predicate.t list
(** The conjuncts, in normalized attribute order. *)

val rect : Schema.t -> t -> Geometry.Rect.t
(** [rect schema s] is the spatial embedding of [s]: the minimal
    closed rectangle containing all points satisfying [s]. *)

val matches : t -> Event.t -> bool
(** [matches s e] is the exact filter semantics: every predicate of
    [s] holds on [e]. An event lacking a constrained attribute does
    not match. *)

val contains : Schema.t -> t -> t -> bool
(** [contains schema s1 s2] is the subscription containment relation
    [s1 ⊒ s2] of §2.1, decided geometrically: the rectangle of [s1]
    encloses the rectangle of [s2]. Reflexive and transitive (a
    partial order up to rectangle equality). *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string
