(** Atomic predicates over a single attribute.

    A content-based filter is a conjunction of predicates
    [S = f1 ∧ ... ∧ fj] where each [fi = (name op value)] (§2.1). *)

type op =
  | Eq  (** [attr = v] *)
  | Lt  (** [attr < v] *)
  | Gt  (** [attr > v] *)
  | Le  (** [attr <= v] *)
  | Ge  (** [attr >= v] *)
  | Between  (** [lo <= attr <= hi] (inclusive range) *)

type t
(** A predicate over one named attribute. *)

val make : string -> op -> Value.t -> t
(** [make attr op v] is the predicate [attr op v].
    @raise Invalid_argument if [op] is [Between] (use {!between}), or
    if [op] is an order comparison and [v] is a string. *)

val between : string -> Value.t -> Value.t -> t
(** [between attr lo hi] is [lo <= attr <= hi].
    @raise Invalid_argument if [lo] or [hi] is a string or
    [lo > hi]. *)

val attr : t -> string
(** The attribute name the predicate constrains. *)

val op : t -> op

val eval : t -> Value.t -> bool
(** [eval p v] is the exact truth value of the predicate on value [v].
    Order comparisons on strings are false; [Eq] uses structural
    equality with numeric coercion ([Int 1] equals [Float 1.]). *)

val interval : t -> float * float
(** [interval p] is the closed interval [lo, hi] of the spatial
    embedding of [p]. Strict bounds ([Lt]/[Gt]) are embedded as their
    closed counterparts: the rectangle over-approximates the predicate
    (routing stays false-negative-free; exactness is restored at
    delivery time by {!eval}). Unbounded sides are
    [neg_infinity]/[infinity]. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string
