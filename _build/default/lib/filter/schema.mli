(** Attribute schemas.

    A schema fixes the set of attributes of the content-based model and
    assigns each a spatial dimension, so that subscriptions become
    rectangles and events become points of a common space. *)

type t

val make : string list -> t
(** [make names] is the schema whose [i]-th dimension carries the
    [i]-th attribute. @raise Invalid_argument on the empty list or
    duplicate names. *)

val dims : t -> int
(** Number of attributes / spatial dimensions. *)

val attributes : t -> string list
(** Attribute names in dimension order. *)

val dimension : t -> string -> int option
(** [dimension s name] is the dimension carrying [name], if any. *)

val dimension_exn : t -> string -> int
(** Like {!dimension}. @raise Not_found if the attribute is unknown. *)

val attribute : t -> int -> string
(** [attribute s i] is the attribute of dimension [i].
    @raise Invalid_argument if out of range. *)

val mem : t -> string -> bool
(** [mem s name] is true iff [name] is an attribute of [s]. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
