type 'a t = {
  elems : 'a array;
  strictly_contains : bool array array;
      (* [strictly_contains.(i).(j)]: i is a strict container of j in the
         order used for the reduction (geometric containment, equal
         rectangles resolved by insertion order). *)
  direct_parents : int list array;
  direct_children : int list array;
}

let build ~rect items =
  let elems = Array.of_list items in
  let n = Array.length elems in
  let rects = Array.map rect elems in
  let strictly_contains = Array.make_matrix n n false in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if i <> j && Geometry.Rect.contains rects.(i) rects.(j) then
        if Geometry.Rect.equal rects.(i) rects.(j) then
          (* Equal rectangles: earlier item is the container. *)
          strictly_contains.(i).(j) <- i < j
        else strictly_contains.(i).(j) <- true
    done
  done;
  let direct_parents = Array.make n [] in
  let direct_children = Array.make n [] in
  for j = 0 to n - 1 do
    for i = 0 to n - 1 do
      if strictly_contains.(i).(j) then begin
        (* i is a direct parent of j iff no k with i > k > j. *)
        let direct = ref true in
        for k = 0 to n - 1 do
          if strictly_contains.(i).(k) && strictly_contains.(k).(j) then
            direct := false
        done;
        if !direct then begin
          direct_parents.(j) <- i :: direct_parents.(j);
          direct_children.(i) <- j :: direct_children.(i)
        end
      end
    done
  done;
  Array.iteri (fun j ps -> direct_parents.(j) <- List.rev ps) direct_parents;
  Array.iteri (fun i cs -> direct_children.(i) <- List.rev cs) direct_children;
  { elems; strictly_contains; direct_parents; direct_children }

let items g = Array.to_list g.elems
let size g = Array.length g.elems

let check_index g i =
  if i < 0 || i >= size g then invalid_arg "Containment: index out of range"

let item g i =
  check_index g i;
  g.elems.(i)

let contains g i j =
  check_index g i;
  check_index g j;
  i = j || g.strictly_contains.(i).(j)

let parents g j =
  check_index g j;
  g.direct_parents.(j)

let children g i =
  check_index g i;
  g.direct_children.(i)

let roots g =
  let acc = ref [] in
  for j = size g - 1 downto 0 do
    if g.direct_parents.(j) = [] then acc := j :: !acc
  done;
  !acc
