type op = Eq | Lt | Gt | Le | Ge | Between

type t = { attr : string; op : op; v1 : Value.t; v2 : Value.t option }

let is_string = function Value.String _ -> true | Value.Int _ | Value.Float _ -> false

let make attr op v =
  (match op with
  | Between -> invalid_arg "Predicate.make: use Predicate.between"
  | Lt | Gt | Le | Ge ->
      if is_string v then
        invalid_arg "Predicate.make: order comparison on string value"
  | Eq -> ());
  { attr; op; v1 = v; v2 = None }

let between attr lo hi =
  if is_string lo || is_string hi then
    invalid_arg "Predicate.between: string bound";
  if Value.to_float lo > Value.to_float hi then
    invalid_arg "Predicate.between: lo > hi";
  { attr; op = Between; v1 = lo; v2 = Some hi }

let attr p = p.attr
let op p = p.op

let eval p v =
  match p.op with
  | Eq -> (
      match Value.compare_numeric v p.v1 with
      | Some c -> c = 0
      | None -> Value.equal v p.v1)
  | Lt -> ( match Value.compare_numeric v p.v1 with Some c -> c < 0 | None -> false)
  | Gt -> ( match Value.compare_numeric v p.v1 with Some c -> c > 0 | None -> false)
  | Le -> ( match Value.compare_numeric v p.v1 with Some c -> c <= 0 | None -> false)
  | Ge -> ( match Value.compare_numeric v p.v1 with Some c -> c >= 0 | None -> false)
  | Between -> (
      match (Value.compare_numeric v p.v1, p.v2) with
      | Some c1, Some hi -> (
          match Value.compare_numeric v hi with
          | Some c2 -> c1 >= 0 && c2 <= 0
          | None -> false)
      | _, _ -> false)

let interval p =
  let f = Value.to_float p.v1 in
  match p.op with
  | Eq -> (f, f)
  | Lt | Le -> (neg_infinity, f)
  | Gt | Ge -> (f, infinity)
  | Between -> (
      match p.v2 with
      | Some hi -> (f, Value.to_float hi)
      | None -> assert false)

let equal a b =
  String.equal a.attr b.attr && a.op = b.op && Value.equal a.v1 b.v1
  && Option.equal Value.equal a.v2 b.v2

let op_symbol = function
  | Eq -> "="
  | Lt -> "<"
  | Gt -> ">"
  | Le -> "<="
  | Ge -> ">="
  | Between -> "between"

let pp ppf p =
  match (p.op, p.v2) with
  | Between, Some hi ->
      Format.fprintf ppf "%a <= %s <= %a" Value.pp p.v1 p.attr Value.pp hi
  | _, _ -> Format.fprintf ppf "%s %s %a" p.attr (op_symbol p.op) Value.pp p.v1

let to_string p = Format.asprintf "%a" pp p
