(** Subscription containment graphs.

    The containment relation between subscriptions is a partial order
    (§2.1, Figure 1 right). This module materializes it for a finite
    set of labeled rectangles: the full relation, its transitive
    reduction (Hasse diagram / "containment graph"), and the maximal
    (uncontained) elements. Used by the containment-tree baseline and
    by the containment-awareness experiments (E11). *)

type 'a t
(** A containment graph over items of type ['a]. *)

val build : rect:('a -> Geometry.Rect.t) -> 'a list -> 'a t
(** [build ~rect items] computes the containment graph. Two items with
    equal rectangles contain each other; ties are broken by list order
    so the reduction stays acyclic (the earlier item is treated as the
    container). O(n² · d) for n items in d dimensions. *)

val items : 'a t -> 'a list
(** The items, in insertion order. *)

val contains : 'a t -> int -> int -> bool
(** [contains g i j] is true iff item [i] (by insertion index)
    contains item [j] in the full (transitive) relation. [contains g
    i i] is true. *)

val parents : 'a t -> int -> int list
(** [parents g j] are the direct containers of [j] in the transitive
    reduction: containers of [j] that contain no other container of
    [j] strictly. *)

val children : 'a t -> int -> int list
(** Direct containees in the transitive reduction. *)

val roots : 'a t -> int list
(** Items contained by no other item (the maximal elements). *)

val size : 'a t -> int

val item : 'a t -> int -> 'a
(** [item g i] is the item with insertion index [i].
    @raise Invalid_argument if out of range. *)
