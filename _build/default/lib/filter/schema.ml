type t = { names : string array; index : (string, int) Hashtbl.t }

let make names =
  if names = [] then invalid_arg "Schema.make: empty attribute list";
  let arr = Array.of_list names in
  let index = Hashtbl.create (Array.length arr) in
  Array.iteri
    (fun i name ->
      if Hashtbl.mem index name then
        invalid_arg ("Schema.make: duplicate attribute " ^ name);
      Hashtbl.add index name i)
    arr;
  { names = arr; index }

let dims s = Array.length s.names
let attributes s = Array.to_list s.names
let dimension s name = Hashtbl.find_opt s.index name

let dimension_exn s name =
  match dimension s name with Some i -> i | None -> raise Not_found

let attribute s i =
  if i < 0 || i >= dims s then invalid_arg "Schema.attribute: out of range";
  s.names.(i)

let mem s name = Hashtbl.mem s.index name

let equal a b =
  Array.length a.names = Array.length b.names
  && Array.for_all2 String.equal a.names b.names

let pp ppf s =
  Format.fprintf ppf "{%a}"
    (Format.pp_print_array
       ~pp_sep:(fun ppf () -> Format.fprintf ppf "; ")
       Format.pp_print_string)
    s.names
