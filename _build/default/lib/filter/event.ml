type t = (string * Value.t) list

let make bindings =
  if bindings = [] then invalid_arg "Event.make: empty event";
  let seen = Hashtbl.create 8 in
  List.iter
    (fun (name, _) ->
      if Hashtbl.mem seen name then
        invalid_arg ("Event.make: duplicate attribute " ^ name);
      Hashtbl.add seen name ())
    bindings;
  bindings

let of_point schema p =
  if Geometry.Point.dims p <> Schema.dims schema then
    invalid_arg "Event.of_point: dimension mismatch";
  List.mapi
    (fun i name -> (name, Value.float (Geometry.Point.coord p i)))
    (Schema.attributes schema)

let value e attr = List.assoc_opt attr e
let attributes e = List.map fst e
let bindings e = e

let to_point schema e =
  let coords =
    Array.init (Schema.dims schema) (fun i ->
        let name = Schema.attribute schema i in
        match value e name with
        | Some v -> Value.to_float v
        | None ->
            invalid_arg ("Event.to_point: missing attribute " ^ name))
  in
  Geometry.Point.make coords

let equal a b =
  List.length a = List.length b
  && List.for_all
       (fun (name, v) ->
         match List.assoc_opt name b with
         | Some w -> Value.equal v w
         | None -> false)
       a

let pp ppf e =
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf "; ")
       (fun ppf (name, v) -> Format.fprintf ppf "%s=%a" name Value.pp v))
    e

let to_string e = Format.asprintf "%a" pp e
