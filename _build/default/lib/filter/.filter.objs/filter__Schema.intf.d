lib/filter/schema.mli: Format
