lib/filter/value.ml: Char Float Format Int String
