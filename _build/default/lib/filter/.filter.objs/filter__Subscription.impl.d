lib/filter/subscription.ml: Array Event Float Format Geometry Hashtbl List Predicate Schema String Value
