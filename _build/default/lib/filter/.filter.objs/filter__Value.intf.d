lib/filter/value.mli: Format
