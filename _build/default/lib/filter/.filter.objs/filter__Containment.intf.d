lib/filter/containment.mli: Geometry
