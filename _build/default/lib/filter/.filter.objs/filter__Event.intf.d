lib/filter/event.mli: Format Geometry Schema Value
