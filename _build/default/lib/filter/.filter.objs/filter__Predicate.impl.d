lib/filter/predicate.ml: Format Option String Value
