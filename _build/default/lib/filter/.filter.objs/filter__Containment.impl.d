lib/filter/containment.ml: Array Geometry List
