lib/filter/predicate.mli: Format Value
