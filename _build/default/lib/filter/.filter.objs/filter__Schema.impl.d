lib/filter/schema.ml: Array Format Hashtbl String
