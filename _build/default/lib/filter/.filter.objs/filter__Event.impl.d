lib/filter/event.ml: Array Format Geometry Hashtbl List Schema Value
