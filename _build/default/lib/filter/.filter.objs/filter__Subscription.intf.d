lib/filter/subscription.mli: Event Format Geometry Predicate Schema
