type t = Predicate.t list
(* Normalized: sorted by attribute name, at most one interval-shaped
   constraint kept per attribute for embedding, but all original
   predicates retained for exact [matches]. *)

let make = function
  | [] -> invalid_arg "Subscription.make: empty conjunction"
  | preds ->
      (* Detect contradictory conjunctions per attribute: the spatial
         intersection of the intervals must be non-empty. *)
      let by_attr = Hashtbl.create 8 in
      List.iter
        (fun p ->
          let lo, hi = Predicate.interval p in
          let lo', hi' =
            match Hashtbl.find_opt by_attr (Predicate.attr p) with
            | None -> (lo, hi)
            | Some (l, h) -> (Float.max l lo, Float.min h hi)
          in
          if lo' > hi' then
            invalid_arg
              ("Subscription.make: contradictory predicates on "
              ^ Predicate.attr p);
          Hashtbl.replace by_attr (Predicate.attr p) (lo', hi'))
        preds;
      List.sort (fun a b -> String.compare (Predicate.attr a) (Predicate.attr b)) preds

let of_rect schema r =
  if Geometry.Rect.dims r <> Schema.dims schema then
    invalid_arg "Subscription.of_rect: dimension mismatch";
  let preds = ref [] in
  for i = Schema.dims schema - 1 downto 0 do
    let name = Schema.attribute schema i in
    let lo = Geometry.Rect.low r i and hi = Geometry.Rect.high r i in
    let p =
      if Float.is_finite lo && Float.is_finite hi then
        Some (Predicate.between name (Value.float lo) (Value.float hi))
      else if Float.is_finite lo then
        Some (Predicate.make name Predicate.Ge (Value.float lo))
      else if Float.is_finite hi then
        Some (Predicate.make name Predicate.Le (Value.float hi))
      else None
    in
    match p with Some p -> preds := p :: !preds | None -> ()
  done;
  match !preds with
  | [] ->
      (* Fully unbounded filter: keep a vacuous range on the first
         attribute so the conjunction is non-empty. *)
      make
        [ Predicate.between
            (Schema.attribute schema 0)
            (Value.float neg_infinity) (Value.float infinity) ]
  | ps -> make ps

let predicates s = s

let rect schema s =
  let n = Schema.dims schema in
  let lo = Array.make n neg_infinity and hi = Array.make n infinity in
  List.iter
    (fun p ->
      match Schema.dimension schema (Predicate.attr p) with
      | None -> () (* attribute outside the schema: no spatial constraint *)
      | Some i ->
          let l, h = Predicate.interval p in
          lo.(i) <- Float.max lo.(i) l;
          hi.(i) <- Float.min hi.(i) h)
    s;
  Geometry.Rect.make ~low:lo ~high:hi

let matches s e =
  List.for_all
    (fun p ->
      match Event.value e (Predicate.attr p) with
      | Some v -> Predicate.eval p v
      | None -> false)
    s

let contains schema s1 s2 = Geometry.Rect.contains (rect schema s1) (rect schema s2)

let equal a b = List.length a = List.length b && List.for_all2 Predicate.equal a b

let pp ppf s =
  Format.fprintf ppf "%a"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf " && ")
       Predicate.pp)
    s

let to_string s = Format.asprintf "%a" pp s
