type t = Int of int | Float of float | String of string

let int n = Int n
let float f = Float f
let string s = String s

let equal a b =
  match (a, b) with
  | Int x, Int y -> Int.equal x y
  | Float x, Float y -> Float.equal x y
  | String x, String y -> String.equal x y
  | (Int _ | Float _ | String _), _ -> false

let compare_numeric a b =
  match (a, b) with
  | Int x, Int y -> Some (Int.compare x y)
  | Float x, Float y -> Some (Float.compare x y)
  | Int x, Float y -> Some (Float.compare (float_of_int x) y)
  | Float x, Int y -> Some (Float.compare x (float_of_int y))
  | String _, _ | _, String _ -> None

(* FNV-1a, folded to [0, 1e9): stable across runs, unlike
   [Hashtbl.hash] with randomization enabled. *)
let fnv1a s =
  (* 0xcbf29ce484222325 does not fit OCaml's 63-bit int; the truncated
     offset basis keeps the same mixing behaviour. *)
  let h = ref 0x4bf29ce484222325 in
  String.iter
    (fun c ->
      h := !h lxor Char.code c;
      h := !h * 0x100000001b3)
    s;
  !h land max_int

let to_float = function
  | Int n -> float_of_int n
  | Float f -> f
  | String s -> Float.of_int (fnv1a s mod 1_000_000_000)

let pp ppf = function
  | Int n -> Format.fprintf ppf "%d" n
  | Float f -> Format.fprintf ppf "%g" f
  | String s -> Format.fprintf ppf "%S" s

let to_string v = Format.asprintf "%a" pp v
