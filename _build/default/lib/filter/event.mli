(** Events (publications).

    An event specifies a value for each attribute and corresponds
    geometrically to a point (§2.1). *)

type t

val make : (string * Value.t) list -> t
(** [make bindings] is the event with the given attribute/value
    bindings. @raise Invalid_argument on duplicate attributes or the
    empty list. *)

val of_point : Schema.t -> Geometry.Point.t -> t
(** [of_point schema p] binds each schema attribute to the matching
    coordinate of [p] (as a [Float]). @raise Invalid_argument on
    dimension mismatch. *)

val value : t -> string -> Value.t option
(** [value e attr] is the value bound to [attr], if any. *)

val attributes : t -> string list
(** Attribute names carried by the event (in binding order). *)

val bindings : t -> (string * Value.t) list

val to_point : Schema.t -> t -> Geometry.Point.t
(** [to_point schema e] is the spatial embedding of [e].
    @raise Invalid_argument if the event misses a schema attribute
    (the model requires events to specify a value for each
    attribute). *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string
