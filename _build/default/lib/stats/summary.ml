type t = {
  count : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  p50 : float;
  p90 : float;
  p99 : float;
}

let mean = function
  | [] -> invalid_arg "Summary.mean: empty sample"
  | xs -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let stddev = function
  | [] -> invalid_arg "Summary.stddev: empty sample"
  | [ _ ] -> 0.0
  | xs ->
      let m = mean xs in
      let ss = List.fold_left (fun acc x -> acc +. ((x -. m) ** 2.0)) 0.0 xs in
      sqrt (ss /. float_of_int (List.length xs - 1))

let percentile sorted q =
  let n = Array.length sorted in
  if n = 0 then invalid_arg "Summary.percentile: empty sample";
  if q < 0.0 || q > 1.0 then invalid_arg "Summary.percentile: q outside [0,1]";
  if n = 1 then sorted.(0)
  else
    let rank = q *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor rank) in
    let hi = min (lo + 1) (n - 1) in
    let frac = rank -. float_of_int lo in
    sorted.(lo) +. (frac *. (sorted.(hi) -. sorted.(lo)))

let of_list xs =
  if xs = [] then invalid_arg "Summary.of_list: empty sample";
  let sorted = Array.of_list xs in
  Array.sort Float.compare sorted;
  let n = Array.length sorted in
  {
    count = n;
    mean = mean xs;
    stddev = stddev xs;
    min = sorted.(0);
    max = sorted.(n - 1);
    p50 = percentile sorted 0.5;
    p90 = percentile sorted 0.9;
    p99 = percentile sorted 0.99;
  }

let of_ints xs = of_list (List.map float_of_int xs)

let pp ppf s =
  Format.fprintf ppf
    "n=%d mean=%.3g sd=%.3g min=%.3g p50=%.3g p90=%.3g p99=%.3g max=%.3g"
    s.count s.mean s.stddev s.min s.p50 s.p90 s.p99 s.max
