(** Least-squares line fitting.

    Used by the experiment harness to verify asymptotic claims: fit
    measured values against a predicted shape (e.g. tree height
    against [log_m N]) and report slope and goodness of fit. *)

type fit = {
  slope : float;
  intercept : float;
  r2 : float;  (** coefficient of determination; [1.] for a perfect
                   fit, [nan] when the dependent variable is constant *)
}

val linear : (float * float) list -> fit
(** [linear [(x, y); ...]] fits [y = slope * x + intercept].
    @raise Invalid_argument with fewer than 2 points or constant x. *)

val pp_fit : Format.formatter -> fit -> unit
