type t = {
  lo : float;
  hi : float;
  width : float;
  counts : int array;
  mutable total : int;
}

let create ~lo ~hi ~bins =
  if bins <= 0 then invalid_arg "Histogram.create: bins <= 0";
  if hi <= lo then invalid_arg "Histogram.create: hi <= lo";
  { lo; hi; width = (hi -. lo) /. float_of_int bins;
    counts = Array.make bins 0; total = 0 }

let add h x =
  let bins = Array.length h.counts in
  let i =
    if x < h.lo then 0
    else if x >= h.hi then bins - 1
    else
      let i = int_of_float ((x -. h.lo) /. h.width) in
      min i (bins - 1)
  in
  h.counts.(i) <- h.counts.(i) + 1;
  h.total <- h.total + 1

let add_many h xs = List.iter (add h) xs
let count h = h.total

let bucket_count h i =
  if i < 0 || i >= Array.length h.counts then
    invalid_arg "Histogram.bucket_count: out of range";
  h.counts.(i)

let bucket_bounds h i =
  if i < 0 || i >= Array.length h.counts then
    invalid_arg "Histogram.bucket_bounds: out of range";
  (h.lo +. (float_of_int i *. h.width), h.lo +. (float_of_int (i + 1) *. h.width))

let pp ppf h =
  let peak = Array.fold_left max 1 h.counts in
  Array.iteri
    (fun i c ->
      if c > 0 then begin
        let lo, hi = bucket_bounds h i in
        let bar = String.make (max 1 (c * 40 / peak)) '#' in
        Format.fprintf ppf "[%8.3g, %8.3g) %6d %s@." lo hi c bar
      end)
    h.counts
