lib/stats/table.ml: Buffer Filename Format List Printf String Sys
