lib/stats/regression.ml: Float Format List
