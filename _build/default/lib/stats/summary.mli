(** Descriptive statistics over float samples. *)

type t = {
  count : int;
  mean : float;
  stddev : float;  (** sample standard deviation (n-1); [0.] if n < 2 *)
  min : float;
  max : float;
  p50 : float;
  p90 : float;
  p99 : float;
}

val of_list : float list -> t
(** @raise Invalid_argument on the empty list. *)

val of_ints : int list -> t

val percentile : float array -> float -> float
(** [percentile sorted q] with [q] in [0, 1]: linear interpolation
    between closest ranks. The array must be sorted ascending.
    @raise Invalid_argument on empty array or [q] outside [0, 1]. *)

val mean : float list -> float
val stddev : float list -> float

val pp : Format.formatter -> t -> unit
