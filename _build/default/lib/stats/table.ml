type t = {
  title : string;
  columns : string list;
  mutable rows : string list list;  (* reversed *)
}

let create ~title ~columns = { title; columns; rows = [] }

let add_row t cells =
  if List.length cells <> List.length t.columns then
    invalid_arg "Table.add_row: arity mismatch";
  t.rows <- cells :: t.rows

let add_rowf t fmt =
  Printf.ksprintf (fun s -> add_row t (String.split_on_char '|' s)) fmt

let pp ppf t =
  let rows = List.rev t.rows in
  let widths =
    List.mapi
      (fun i header ->
        List.fold_left
          (fun w row -> max w (String.length (List.nth row i)))
          (String.length header) rows)
      t.columns
  in
  let total =
    List.fold_left ( + ) 0 widths + (3 * List.length widths) + 1
  in
  let hline = String.make total '-' in
  let render_row cells =
    Format.fprintf ppf "|";
    List.iter2
      (fun cell width -> Format.fprintf ppf " %*s |" width cell)
      cells widths;
    Format.fprintf ppf "@."
  in
  Format.fprintf ppf "%s@." t.title;
  Format.fprintf ppf "%s@." hline;
  render_row t.columns;
  Format.fprintf ppf "%s@." hline;
  List.iter render_row rows;
  Format.fprintf ppf "%s@." hline

let csv_cell cell =
  let needs_quoting =
    String.exists (fun c -> c = ',' || c = '"' || c = '\n') cell
  in
  if needs_quoting then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' cell) ^ "\""
  else cell

let to_csv t =
  let buf = Buffer.create 1024 in
  let row cells =
    Buffer.add_string buf (String.concat "," (List.map csv_cell cells));
    Buffer.add_char buf '\n'
  in
  row t.columns;
  List.iter row (List.rev t.rows);
  Buffer.contents buf

let slug title =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' -> c
      | _ -> '_')
    (String.lowercase_ascii title)

let print t =
  Format.printf "%a@." pp t;
  (* Opt-in machine-readable mirror of every printed table. *)
  match Sys.getenv_opt "DRTREE_CSV_DIR" with
  | None | Some "" -> ()
  | Some dir ->
      let keep = min 60 (String.length t.title) in
      let path =
        Filename.concat dir (slug (String.sub t.title 0 keep) ^ ".csv")
      in
      let oc = open_out path in
      output_string oc (to_csv t);
      close_out oc

