(** ASCII table rendering for the experiment harness.

    Every experiment prints its results as one of these tables, so
    bench output is uniform and diffable. *)

type t

val create : title:string -> columns:string list -> t
(** A table with the given header. *)

val add_row : t -> string list -> unit
(** @raise Invalid_argument when the arity differs from the header. *)

val add_rowf : t -> ('a, unit, string, unit) format4 -> 'a
(** [add_rowf t fmt ...] formats one string and splits it on ['|']
    into cells — convenient for mixed-type rows:
    [add_rowf t "%d|%.2f|%s" n x s]. *)

val pp : Format.formatter -> t -> unit
val print : t -> unit
(** [pp] on [stdout], followed by a blank line. *)

val to_csv : t -> string
(** RFC-4180-ish rendering: header row then data rows; cells
    containing commas, quotes or newlines are quoted. *)
