(** Fixed-width histograms. *)

type t

val create : lo:float -> hi:float -> bins:int -> t
(** [create ~lo ~hi ~bins] covers [lo, hi) with [bins] equal buckets;
    samples outside the range land in saturating edge buckets.
    @raise Invalid_argument if [bins <= 0] or [hi <= lo]. *)

val add : t -> float -> unit
val add_many : t -> float list -> unit

val count : t -> int
(** Total number of samples. *)

val bucket_count : t -> int -> int
(** [bucket_count h i] is the number of samples in bucket [i].
    @raise Invalid_argument if out of range. *)

val bucket_bounds : t -> int -> float * float

val pp : Format.formatter -> t -> unit
(** ASCII bar rendering, one line per non-empty bucket. *)
