(* Tests for the workload generators. *)

module R = Geometry.Rect
module P = Geometry.Point
module Sp = Workload.Space
module Sg = Workload.Subscription_gen
module Eg = Workload.Event_gen

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let space = Sp.default

let inside_space r =
  R.contains (Sp.rect space) r

let test_space () =
  check_int "dims" 2 space.Sp.dims;
  check_bool "width" true (Sp.width space = 100.0);
  check_bool "clamp low" true (Sp.clamp space (-5.0) = 0.0);
  check_bool "clamp high" true (Sp.clamp space 105.0 = 100.0);
  check_bool "clamp id" true (Sp.clamp space 42.0 = 42.0);
  check_bool "bad space" true
    (try ignore (Sp.make ~dims:0 ()); false with Invalid_argument _ -> true)

let test_uniform_subs () =
  let rng = Sim.Rng.make 1 in
  let rects = Sg.uniform () space rng 200 in
  check_int "count" 200 (List.length rects);
  List.iter (fun r -> check_bool "inside space" true (inside_space r)) rects;
  List.iter
    (fun r ->
      check_bool "extent bounded" true
        (R.extent r 0 <= 10.0 +. 1e-9 && R.extent r 1 <= 10.0 +. 1e-9))
    rects

let test_clustered_subs () =
  let rng = Sim.Rng.make 2 in
  let rects = Sg.clustered ~clusters:3 () space rng 300 in
  check_int "count" 300 (List.length rects);
  List.iter (fun r -> check_bool "inside" true (inside_space r)) rects;
  (* Clustering: the average pairwise center distance should be well
     below the uniform expectation (~52 for [0,100]^2). *)
  let centers = List.map R.center rects in
  let arr = Array.of_list centers in
  let total = ref 0.0 and count = ref 0 in
  Array.iteri
    (fun i a ->
      if i mod 7 = 0 then
        Array.iteri
          (fun j b ->
            if j > i && j mod 7 = 0 then begin
              total := !total +. P.distance a b;
              incr count
            end)
          arr)
    arr;
  let avg = !total /. float_of_int !count in
  (* Deterministic seed; uniform placement would give ~52. *)
  check_bool (Printf.sprintf "clustered avg distance %.1f < 49" avg) true
    (avg < 49.0)

let test_containment_subs () =
  let rng = Sim.Rng.make 3 in
  let rects = Sg.containment ~roots:4 () space rng 100 in
  check_int "count" 100 (List.length rects);
  (* Count strict containment pairs: a containment workload must have
     plenty (a uniform one has nearly none). *)
  let arr = Array.of_list rects in
  let pairs = ref 0 in
  Array.iter
    (fun a ->
      Array.iter
        (fun b ->
          if (not (R.equal a b)) && R.contains a b then incr pairs)
        arr)
    arr;
  check_bool
    (Printf.sprintf "containment pairs %d > 100" !pairs)
    true (!pairs > 100)

let test_skewed_subs () =
  let rng = Sim.Rng.make 4 in
  let rects = Sg.skewed () space rng 500 in
  let areas = List.map R.area rects in
  let sorted = List.sort Float.compare areas in
  let arr = Array.of_list sorted in
  let median = arr.(Array.length arr / 2) in
  let biggest = arr.(Array.length arr - 1) in
  check_bool "heavy tail" true (biggest > 50.0 *. Float.max median 1e-6)

let test_point_subs () =
  let rng = Sim.Rng.make 5 in
  let rects = Sg.point_interests space rng 50 in
  List.iter (fun r -> check_bool "degenerate" true (R.area r = 0.0)) rects

let test_catalog () =
  check_int "five workloads" 5 (List.length Sg.catalog);
  let rng = Sim.Rng.make 6 in
  List.iter
    (fun (name, gen) ->
      let rects = gen space rng 20 in
      check_int (name ^ " count") 20 (List.length rects))
    Sg.catalog

(* --- Events ------------------------------------------------------------------- *)

let in_space p =
  R.contains_point (Sp.rect space) p

let test_uniform_events () =
  let rng = Sim.Rng.make 7 in
  let pts = Eg.uniform space rng 300 in
  check_int "count" 300 (List.length pts);
  List.iter (fun p -> check_bool "inside" true (in_space p)) pts

let test_hotspot_events () =
  let rng = Sim.Rng.make 8 in
  let pts = Eg.hotspot ~fraction:0.9 ~radius:5.0 () space rng 500 in
  List.iter (fun p -> check_bool "inside" true (in_space p)) pts;
  (* Most points concentrate: the hottest 20x20 cell should hold more
     than a third of the events. *)
  let counts = Hashtbl.create 25 in
  List.iter
    (fun p ->
      let cx = int_of_float (P.coord p 0 /. 20.0) in
      let cy = int_of_float (P.coord p 1 /. 20.0) in
      let k = (cx, cy) in
      Hashtbl.replace counts k (1 + Option.value ~default:0 (Hashtbl.find_opt counts k)))
    pts;
  let peak = Hashtbl.fold (fun _ v acc -> max v acc) counts 0 in
  check_bool (Printf.sprintf "hotspot peak %d > 150" peak) true (peak > 150)

let test_zipf_events () =
  let rng = Sim.Rng.make 9 in
  let pts = Eg.zipf_grid ~cells:10 ~s:1.2 () space rng 1000 in
  List.iter (fun p -> check_bool "inside" true (in_space p)) pts;
  (* Rank-1 cell (lowest corner cell) should be the most popular. *)
  let hits00 =
    List.length
      (List.filter (fun p -> P.coord p 0 < 10.0 && P.coord p 1 < 10.0) pts)
  in
  check_bool (Printf.sprintf "rank-1 cell hits %d > 100" hits00) true
    (hits00 > 100)

let test_targeted_events () =
  let rng = Sim.Rng.make 10 in
  let subs = Sg.uniform () space rng 50 in
  let pts = Eg.targeted subs ~hit_rate:1.0 space rng 200 in
  (* With hit_rate 1 every event lies inside some subscription. *)
  List.iter
    (fun p ->
      check_bool "event covered by a subscription" true
        (List.exists (fun r -> R.contains_point r p) subs))
    pts;
  check_bool "bad hit rate" true
    (try ignore (Eg.targeted subs ~hit_rate:1.5 space rng 1); false
     with Invalid_argument _ -> true);
  check_bool "no subs" true
    (try ignore (Eg.targeted [] ~hit_rate:0.5 space rng 1); false
     with Invalid_argument _ -> true)

let test_event_catalog () =
  let rng = Sim.Rng.make 11 in
  let subs = Sg.uniform () space rng 10 in
  let cat = Eg.catalog ~subscriptions:subs in
  check_int "four event workloads" 4 (List.length cat);
  List.iter
    (fun (name, gen) ->
      check_int (name ^ " count") 25 (List.length (gen space rng 25)))
    cat

let test_determinism () =
  let gen1 = Sg.uniform () space (Sim.Rng.make 42) 50 in
  let gen2 = Sg.uniform () space (Sim.Rng.make 42) 50 in
  check_bool "same seed, same workload" true
    (List.for_all2 R.equal gen1 gen2)

let () =
  Alcotest.run "workload"
    [
      ("space", [ Alcotest.test_case "basics" `Quick test_space ]);
      ( "subscriptions",
        [
          Alcotest.test_case "uniform" `Quick test_uniform_subs;
          Alcotest.test_case "clustered" `Quick test_clustered_subs;
          Alcotest.test_case "containment" `Quick test_containment_subs;
          Alcotest.test_case "skewed" `Quick test_skewed_subs;
          Alcotest.test_case "points" `Quick test_point_subs;
          Alcotest.test_case "catalog" `Quick test_catalog;
        ] );
      ( "events",
        [
          Alcotest.test_case "uniform" `Quick test_uniform_events;
          Alcotest.test_case "hotspot" `Quick test_hotspot_events;
          Alcotest.test_case "zipf grid" `Quick test_zipf_events;
          Alcotest.test_case "targeted" `Quick test_targeted_events;
          Alcotest.test_case "catalog" `Quick test_event_catalog;
        ] );
      ( "determinism",
        [ Alcotest.test_case "seeded reproducibility" `Quick test_determinism ] );
    ]
