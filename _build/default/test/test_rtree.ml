(* Tests for the sequential R-tree and the three split policies. *)

module R = Geometry.Rect
module P = Geometry.Point
module T = Rtree.Tree
module S = Rtree.Split

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let rect x0 y0 x1 y1 = R.make2 ~x0 ~y0 ~x1 ~y1

let ok_invariants t =
  match T.check_invariants t with
  | Ok () -> true
  | Error msg ->
      Printf.eprintf "invariant violation: %s\n" msg;
      false

let all_kinds = [ S.Linear; S.Quadratic; S.Rstar ]

let random_rect rng =
  let x0 = Sim.Rng.range rng 0.0 95.0 and y0 = Sim.Rng.range rng 0.0 95.0 in
  let w = Sim.Rng.range rng 0.5 5.0 and h = Sim.Rng.range rng 0.5 5.0 in
  rect x0 y0 (x0 +. w) (y0 +. h)

(* --- Split policies ------------------------------------------------------- *)

let entries_of rects = List.mapi (fun i r -> (r, i)) rects

let test_split_sizes () =
  let rng = Sim.Rng.make 1 in
  List.iter
    (fun kind ->
      for _ = 1 to 20 do
        let n = 4 + Sim.Rng.int rng 8 in
        let entries = entries_of (List.init n (fun _ -> random_rect rng)) in
        let g1, g2 = S.split kind ~min_fill:2 entries in
        check_int
          (Printf.sprintf "%s preserves entries" (S.kind_to_string kind))
          n
          (List.length g1 + List.length g2);
        check_bool "g1 min fill" true (List.length g1 >= 2);
        check_bool "g2 min fill" true (List.length g2 >= 2);
        (* No entry lost or duplicated. *)
        let ids =
          List.sort compare (List.map snd g1 @ List.map snd g2)
        in
        check_bool "permutation" true (ids = List.init n Fun.id)
      done)
    all_kinds

let test_split_errors () =
  List.iter
    (fun kind ->
      let entries = entries_of [ rect 0.0 0.0 1.0 1.0 ] in
      check_bool "too few raises" true
        (try
           ignore (S.split kind ~min_fill:2 entries);
           false
         with Invalid_argument _ -> true))
    all_kinds

let test_split_separates_clusters () =
  (* Two far-apart clusters must end up in different groups (any sane
     policy does this). *)
  let cluster cx cy = List.init 3 (fun i ->
      let o = float_of_int i *. 0.1 in
      rect (cx +. o) (cy +. o) (cx +. 1.0 +. o) (cy +. 1.0 +. o))
  in
  let entries = entries_of (cluster 0.0 0.0 @ cluster 100.0 100.0) in
  List.iter
    (fun kind ->
      let g1, g2 = S.split kind ~min_fill:2 entries in
      let ids g = List.sort compare (List.map snd g) in
      let a, b = (ids g1, ids g2) in
      check_bool
        (Printf.sprintf "%s separates clusters" (S.kind_to_string kind))
        true
        ((a = [ 0; 1; 2 ] && b = [ 3; 4; 5 ])
        || (a = [ 3; 4; 5 ] && b = [ 0; 1; 2 ])))
    all_kinds

let test_kind_parsing () =
  check_bool "linear" true (S.kind_of_string "linear" = Some S.Linear);
  check_bool "r*" true (S.kind_of_string "R*" = Some S.Rstar);
  check_bool "unknown" true (S.kind_of_string "foo" = None)

(* --- Tree: basic operations ------------------------------------------------ *)

let test_insert_search () =
  let t = T.create T.default_config in
  check_int "empty size" 0 (T.size t);
  check_int "empty height" 0 (T.height t);
  T.insert t (rect 0.0 0.0 2.0 2.0) "a";
  T.insert t (rect 5.0 5.0 7.0 7.0) "b";
  T.insert t (rect 1.0 1.0 3.0 3.0) "c";
  check_int "size" 3 (T.size t);
  let found = List.sort compare (T.search_point t (P.make2 1.5 1.5)) in
  check_bool "point query" true (found = [ "a"; "c" ]);
  let windowed = List.sort compare (T.search_rect t (rect 4.0 4.0 8.0 8.0)) in
  check_bool "window query" true (windowed = [ "b" ]);
  check_bool "miss" true (T.search_point t (P.make2 50.0 50.0) = [])

let test_growth_and_invariants () =
  let rng = Sim.Rng.make 7 in
  List.iter
    (fun kind ->
      List.iter
        (fun reinsert ->
          let cfg = T.config ~min_fill:2 ~max_fill:4 ~split:kind
              ~forced_reinsert:reinsert ()
          in
          let t = T.create cfg in
          for i = 1 to 300 do
            T.insert t (random_rect rng) i;
            if i mod 50 = 0 then
              check_bool
                (Printf.sprintf "%s reinsert=%b invariants at %d"
                   (S.kind_to_string kind) reinsert i)
                true (ok_invariants t)
          done;
          check_int "size 300" 300 (T.size t);
          check_bool "height logarithmic" true (T.height t <= 9))
        [ false; true ])
    all_kinds

let test_search_completeness () =
  let rng = Sim.Rng.make 11 in
  let t = T.create (T.config ~min_fill:2 ~max_fill:6 ()) in
  let entries = List.init 200 (fun i -> (random_rect rng, i)) in
  List.iter (fun (r, i) -> T.insert t r i) entries;
  for _ = 1 to 50 do
    let p = P.make2 (Sim.Rng.range rng 0.0 100.0) (Sim.Rng.range rng 0.0 100.0) in
    let expected =
      List.filter_map
        (fun (r, i) -> if R.contains_point r p then Some i else None)
        entries
      |> List.sort compare
    in
    let got = List.sort compare (T.search_point t p) in
    check_bool "search matches brute force" true (expected = got)
  done

let test_remove () =
  let rng = Sim.Rng.make 13 in
  let t = T.create T.default_config in
  let entries = List.init 120 (fun i -> (random_rect rng, i)) in
  List.iter (fun (r, i) -> T.insert t r i) entries;
  (* Remove half, verifying size, invariants and searchability. *)
  List.iteri
    (fun idx (r, i) ->
      if idx mod 2 = 0 then begin
        check_bool "removed" true (T.remove t r ~equal:Int.equal i);
        check_bool "remove keeps invariants" true (ok_invariants t)
      end)
    entries;
  check_int "half left" 60 (T.size t);
  List.iteri
    (fun idx (r, i) ->
      let found = T.search_rect t r in
      if idx mod 2 = 0 then
        check_bool "gone" true (not (List.mem i found))
      else check_bool "still there" true (List.mem i found))
    entries;
  (* Removing a non-existent entry fails gracefully. *)
  check_bool "missing remove" false
    (T.remove t (rect 0.0 0.0 1.0 1.0) ~equal:Int.equal 9999)

let test_remove_to_empty () =
  let t = T.create T.default_config in
  let r = rect 0.0 0.0 1.0 1.0 in
  T.insert t r 1;
  check_bool "removed" true (T.remove t r ~equal:Int.equal 1);
  check_int "empty" 0 (T.size t);
  check_int "height 0" 0 (T.height t);
  check_bool "mbr none" true (T.mbr t = None)

let test_duplicates () =
  let t = T.create T.default_config in
  let r = rect 0.0 0.0 1.0 1.0 in
  T.insert t r 1;
  T.insert t r 1;
  check_int "two entries" 2 (T.size t);
  check_bool "one removed" true (T.remove t r ~equal:Int.equal 1);
  check_int "one left" 1 (T.size t)

let test_stats () =
  let rng = Sim.Rng.make 17 in
  let t = T.create T.default_config in
  for i = 1 to 100 do
    T.insert t (random_rect rng) i
  done;
  let st = T.stats t in
  check_bool "nodes counted" true (st.T.node_count > st.T.leaf_count);
  check_bool "leaves exist" true (st.T.leaf_count >= 100 / 4);
  check_bool "coverage positive" true (st.T.total_coverage > 0.0);
  check_bool "overlap non-negative" true (st.T.total_overlap >= 0.0)

let test_config_validation () =
  check_bool "min_fill" true
    (try ignore (T.config ~min_fill:0 ()); false
     with Invalid_argument _ -> true);
  check_bool "max_fill" true
    (try ignore (T.config ~min_fill:3 ~max_fill:5 ()); false
     with Invalid_argument _ -> true)

let test_fold_entries () =
  let t = T.create T.default_config in
  let rs = List.init 10 (fun i ->
      rect (float_of_int i) 0.0 (float_of_int i +. 1.0) 1.0) in
  List.iteri (fun i r -> T.insert t r i) rs;
  check_int "fold count" 10 (T.fold (fun acc _ _ -> acc + 1) 0 t);
  check_int "entries" 10 (List.length (T.entries t));
  (match T.mbr t with
  | Some m -> check_bool "mbr covers" true (R.equal m (rect 0.0 0.0 10.0 1.0))
  | None -> Alcotest.fail "mbr expected")

(* --- Bulk loading (STR) -------------------------------------------------------- *)

let test_bulk_load_basic () =
  let rng = Sim.Rng.make 19 in
  List.iter
    (fun n ->
      let entries = List.init n (fun i -> (random_rect rng, i)) in
      let t = T.bulk_load (T.config ~min_fill:2 ~max_fill:4 ()) entries in
      check_int (Printf.sprintf "size %d" n) n (T.size t);
      check_bool
        (Printf.sprintf "invariants at n=%d" n)
        true (ok_invariants t);
      (* Search completeness on a few probes. *)
      for _ = 1 to 10 do
        let p =
          P.make2 (Sim.Rng.range rng 0.0 100.0) (Sim.Rng.range rng 0.0 100.0)
        in
        let expected =
          List.filter_map
            (fun (r, i) -> if R.contains_point r p then Some i else None)
            entries
          |> List.sort compare
        in
        check_bool "search complete" true
          (List.sort compare (T.search_point t p) = expected)
      done)
    [ 1; 2; 3; 4; 5; 7; 9; 16; 17; 50; 100; 257 ]

let test_bulk_load_utilization () =
  (* Packing should beat incremental insertion on node count. *)
  let rng = Sim.Rng.make 20 in
  let entries = List.init 400 (fun i -> (random_rect rng, i)) in
  let cfg = T.config ~min_fill:2 ~max_fill:4 () in
  let packed = T.bulk_load cfg entries in
  let incremental = T.create cfg in
  List.iter (fun (r, i) -> T.insert incremental r i) entries;
  let sp = T.stats packed and si = T.stats incremental in
  check_bool "fewer nodes when packed" true
    (sp.T.node_count <= si.T.node_count);
  check_bool "height not worse" true (T.height packed <= T.height incremental)

let test_bulk_load_then_mutate () =
  let rng = Sim.Rng.make 21 in
  let entries = List.init 60 (fun i -> (random_rect rng, i)) in
  let t = T.bulk_load T.default_config entries in
  (* The packed tree keeps working as a normal dynamic tree. *)
  T.insert t (rect 1.0 1.0 2.0 2.0) 999;
  check_int "inserted" 61 (T.size t);
  check_bool "invariants after insert" true (ok_invariants t);
  let r0, i0 = List.hd entries in
  check_bool "removed" true (T.remove t r0 ~equal:Int.equal i0);
  check_bool "invariants after remove" true (ok_invariants t);
  check_bool "empty bulk load" true (T.size (T.bulk_load T.default_config []) = 0)

(* --- Nearest neighbours --------------------------------------------------------- *)

let test_nearest_basic () =
  let t = T.create T.default_config in
  T.insert t (rect 0.0 0.0 1.0 1.0) "origin";
  T.insert t (rect 10.0 10.0 11.0 11.0) "mid";
  T.insert t (rect 50.0 50.0 51.0 51.0) "far";
  let nn = T.nearest t (P.make2 0.5 0.5) ~k:2 in
  check_int "k results" 2 (List.length nn);
  (match nn with
  | (d1, _, x1) :: (d2, _, x2) :: _ ->
      check_bool "closest first" true (x1 = "origin" && x2 = "mid");
      check_bool "distances sorted" true (d1 <= d2);
      check_bool "inside has distance 0" true (d1 = 0.0)
  | _ -> Alcotest.fail "expected 2 results");
  check_int "k larger than tree" 3 (List.length (T.nearest t (P.make2 0.0 0.0) ~k:10));
  check_bool "k=0 rejected" true
    (try ignore (T.nearest t (P.make2 0.0 0.0) ~k:0); false
     with Invalid_argument _ -> true);
  check_int "empty tree" 0
    (List.length (T.nearest (T.create T.default_config) (P.make2 0.0 0.0) ~k:3))

let test_nearest_matches_brute_force () =
  let rng = Sim.Rng.make 22 in
  let entries = List.init 150 (fun i -> (random_rect rng, i)) in
  let t = T.create T.default_config in
  List.iter (fun (r, i) -> T.insert t r i) entries;
  for _ = 1 to 25 do
    let p = P.make2 (Sim.Rng.range rng 0.0 100.0) (Sim.Rng.range rng 0.0 100.0) in
    let brute =
      List.map (fun (r, i) -> (sqrt (R.distance_sq_to_point r p), i)) entries
      |> List.sort compare
    in
    let k = 5 in
    let got = T.nearest t p ~k in
    check_int "k results" k (List.length got);
    (* Compare distances (payload ties can order arbitrarily). *)
    List.iteri
      (fun idx (d, _, _) ->
        let bd, _ = List.nth brute idx in
        check_bool "distance matches brute force" true
          (Float.abs (d -. bd) < 1e-9))
      got
  done

(* --- Properties -------------------------------------------------------------- *)

let ops_gen =
  (* A program of inserts (positive) and deletes of earlier keys. *)
  let open QCheck2.Gen in
  list_size (int_range 10 120)
    (pair (float_range 0.0 90.0) (pair (float_range 0.0 90.0) (float_range 0.2 8.0)))

let prop_random_program kind =
  QCheck2.Test.make
    ~name:(Printf.sprintf "invariants under random program (%s)" (S.kind_to_string kind))
    ~count:40 ops_gen
    (fun spec ->
      let cfg = T.config ~min_fill:2 ~max_fill:5 ~split:kind () in
      let t = T.create cfg in
      let inserted = ref [] in
      List.iteri
        (fun i (x, (y, w)) ->
          let r = rect x y (x +. w) (y +. w) in
          T.insert t r i;
          inserted := (r, i) :: !inserted;
          (* Periodically delete the oldest entry. *)
          if i mod 3 = 2 then begin
            match List.rev !inserted with
            | (r0, i0) :: _ ->
                ignore (T.remove t r0 ~equal:Int.equal i0);
                inserted := List.filter (fun (_, j) -> j <> i0) !inserted
            | [] -> ()
          end)
        spec;
      T.size t = List.length !inserted && ok_invariants t)

let prop_search_sound kind =
  QCheck2.Test.make
    ~name:(Printf.sprintf "search sound+complete (%s)" (S.kind_to_string kind))
    ~count:30 ops_gen
    (fun spec ->
      let cfg = T.config ~split:kind () in
      let t = T.create cfg in
      let entries =
        List.mapi
          (fun i (x, (y, w)) ->
            let r = rect x y (x +. w) (y +. w) in
            T.insert t r i;
            (r, i))
          spec
      in
      let p = P.make2 45.0 45.0 in
      let expected =
        List.filter_map
          (fun (r, i) -> if R.contains_point r p then Some i else None)
          entries
        |> List.sort compare
      in
      List.sort compare (T.search_point t p) = expected)

let () =
  let qsuite =
    List.map QCheck_alcotest.to_alcotest
      (List.concat_map
         (fun kind -> [ prop_random_program kind; prop_search_sound kind ])
         all_kinds)
  in
  Alcotest.run "rtree"
    [
      ( "split",
        [
          Alcotest.test_case "sizes and partition" `Quick test_split_sizes;
          Alcotest.test_case "argument errors" `Quick test_split_errors;
          Alcotest.test_case "separates clusters" `Quick
            test_split_separates_clusters;
          Alcotest.test_case "kind parsing" `Quick test_kind_parsing;
        ] );
      ( "tree",
        [
          Alcotest.test_case "insert/search" `Quick test_insert_search;
          Alcotest.test_case "growth keeps invariants" `Quick
            test_growth_and_invariants;
          Alcotest.test_case "search completeness" `Quick
            test_search_completeness;
          Alcotest.test_case "remove" `Quick test_remove;
          Alcotest.test_case "remove to empty" `Quick test_remove_to_empty;
          Alcotest.test_case "duplicates" `Quick test_duplicates;
          Alcotest.test_case "stats" `Quick test_stats;
          Alcotest.test_case "config validation" `Quick test_config_validation;
          Alcotest.test_case "fold/entries/mbr" `Quick test_fold_entries;
        ] );
      ( "bulk-load",
        [
          Alcotest.test_case "sizes and correctness" `Quick test_bulk_load_basic;
          Alcotest.test_case "utilization beats insertion" `Quick
            test_bulk_load_utilization;
          Alcotest.test_case "mutable afterwards" `Quick
            test_bulk_load_then_mutate;
        ] );
      ( "nearest",
        [
          Alcotest.test_case "basics" `Quick test_nearest_basic;
          Alcotest.test_case "matches brute force" `Quick
            test_nearest_matches_brute_force;
        ] );
      ("properties", qsuite);
    ]
