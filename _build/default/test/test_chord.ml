(* Tests for the Chord ring substrate and the rendezvous pub/sub
   baseline built on it. *)

module Ring = Chord.Ring
module Key = Chord.Key
module Cp = Baselines.Chord_pubsub
module Z = Baselines.Zorder
module R = Geometry.Rect
module P = Geometry.Point
module Int_set = Baselines.Report.Int_set

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* --- Key arithmetic -------------------------------------------------------- *)

let test_key_basics () =
  check_int "space" (1 lsl 24) Key.space;
  check_int "mod" 5 (Key.of_int (Key.space + 5));
  check_int "negative" (Key.space - 3) (Key.of_int (-3));
  check_int "distance forward" 10 (Key.distance 5 15);
  check_int "distance wraps" (Key.space - 10) (Key.distance 15 5);
  check_int "finger start" (Key.of_int (100 + 1024)) (Key.add_pow2 100 10)

let test_key_intervals () =
  check_bool "in open" true (Key.in_open 5 ~lo:1 ~hi:10);
  check_bool "excl lo" false (Key.in_open 1 ~lo:1 ~hi:10);
  check_bool "excl hi" false (Key.in_open 10 ~lo:1 ~hi:10);
  check_bool "wrapping" true (Key.in_open 2 ~lo:(Key.space - 5) ~hi:10);
  check_bool "half-open incl hi" true (Key.in_half_open 10 ~lo:1 ~hi:10);
  check_bool "half-open excl lo" false (Key.in_half_open 1 ~lo:1 ~hi:10);
  check_bool "degenerate full ring" true (Key.in_half_open 42 ~lo:7 ~hi:7);
  check_bool "hash deterministic" true (Key.hash_node 17 = Key.hash_node 17);
  check_bool "hash scatters" true (Key.hash_node 1 <> Key.hash_node 2)

(* --- Ring ------------------------------------------------------------------- *)

let build_ring ~seed n =
  let ring = Ring.create ~seed () in
  for _ = 1 to n do
    ignore (Ring.join ring);
    ignore (Ring.stabilize ring)
  done;
  ring

let test_ring_forms () =
  let ring = build_ring ~seed:1 20 in
  check_int "all nodes" 20 (Ring.size ring);
  check_bool "consistent" true (Ring.is_consistent ring)

let test_ring_lookup_correct () =
  let ring = build_ring ~seed:2 32 in
  let rng = Sim.Rng.make 99 in
  let ids = Ring.alive_ids ring in
  for _ = 1 to 50 do
    let k = Key.of_int (Sim.Rng.int rng Key.space) in
    let from = Sim.Rng.pick rng ids in
    match Ring.lookup ring ~from k with
    | Some (owner, hops) ->
        check_bool "owner matches ground truth" true
          (Ring.owner_of ring k = Some owner);
        check_bool "hops logarithmic" true (hops <= 2 * 6)
    | None -> Alcotest.fail "lookup failed on a healthy ring"
  done

let test_ring_lookup_hops_scale () =
  (* Hop counts should grow slowly with n (Chord's log n). *)
  let mean_hops n =
    let ring = build_ring ~seed:(100 + n) n in
    let rng = Sim.Rng.make n in
    let ids = Ring.alive_ids ring in
    let total = ref 0 and cnt = ref 0 in
    for _ = 1 to 40 do
      let k = Key.of_int (Sim.Rng.int rng Key.space) in
      match Ring.lookup ring ~from:(Sim.Rng.pick rng ids) k with
      | Some (_, hops) ->
          total := !total + hops;
          incr cnt
      | None -> ()
    done;
    float_of_int !total /. float_of_int (max 1 !cnt)
  in
  let h16 = mean_hops 16 and h128 = mean_hops 128 in
  check_bool
    (Printf.sprintf "hops %.1f@16 -> %.1f@128 stay sublinear" h16 h128)
    true
    (h128 < h16 *. 4.0 && h128 < 10.0)

let test_ring_crash_recovery () =
  let ring = build_ring ~seed:3 40 in
  let rng = Sim.Rng.make 7 in
  (* Kill a quarter, repair, ring must re-form and lookups work. *)
  let victims =
    List.filteri (fun i _ -> i mod 4 = 0) (Ring.alive_ids ring)
  in
  List.iter (fun v -> Ring.crash ring v) victims;
  check_bool "stabilizes after crashes" true (Ring.stabilize ring <> None);
  check_bool "consistent" true (Ring.is_consistent ring);
  let ids = Ring.alive_ids ring in
  for _ = 1 to 20 do
    let k = Key.of_int (Sim.Rng.int rng Key.space) in
    match Ring.lookup ring ~from:(Sim.Rng.pick rng ids) k with
    | Some (owner, _) ->
        check_bool "post-repair owner correct" true
          (Ring.owner_of ring k = Some owner)
    | None -> Alcotest.fail "post-repair lookup failed"
  done

let test_ring_single_node () =
  let ring = build_ring ~seed:4 1 in
  check_bool "self-consistent" true (Ring.is_consistent ring);
  let id = List.hd (Ring.alive_ids ring) in
  (match Ring.lookup ring ~from:id (Key.of_int 12345) with
  | Some (owner, _) -> check_bool "owns everything" true (owner = id)
  | None -> Alcotest.fail "lookup on singleton");
  check_bool "key exposed" true (Ring.key_of ring id <> None)

(* --- Z-order ----------------------------------------------------------------- *)

let space = R.make2 ~x0:0.0 ~y0:0.0 ~x1:100.0 ~y1:100.0

let test_zorder_roundtrip () =
  let z = Z.create ~bits_per_dim:3 ~space () in
  check_int "cells per dim" 8 (Z.cells_per_dim z);
  check_int "total" 64 (Z.total_cells z);
  (* Every point's cell rect contains the point. *)
  let rng = Sim.Rng.make 5 in
  for _ = 1 to 100 do
    let p = P.make2 (Sim.Rng.range rng 0.0 100.0) (Sim.Rng.range rng 0.0 100.0) in
    let key = Z.point_key z p in
    check_bool "key in range" true (key >= 0 && key < 64);
    check_bool "cell contains point" true
      (R.contains_point (Z.cell_rect z key) p)
  done

let test_zorder_rect_cover () =
  let z = Z.create ~bits_per_dim:3 ~space () in
  let r = R.make2 ~x0:10.0 ~y0:10.0 ~x1:40.0 ~y1:30.0 in
  let keys = Z.rect_keys z r in
  (* 12.5-wide cells: x cells 0..3, y cells 0..2 -> 4 x 3 = 12 keys *)
  check_int "cover count" 12 (List.length keys);
  (* Every point of the rect falls in a covered cell. *)
  let rng = Sim.Rng.make 6 in
  for _ = 1 to 50 do
    let p =
      P.make2 (Sim.Rng.range rng 10.0 40.0) (Sim.Rng.range rng 10.0 30.0)
    in
    check_bool "point covered" true (List.mem (Z.point_key z p) keys)
  done;
  (* Unbounded space rejected. *)
  check_bool "unbounded rejected" true
    (try ignore (Z.create ~space:(R.universe 2) ()); false
     with Invalid_argument _ -> true)

(* --- Chord pub/sub ------------------------------------------------------------- *)

let random_rect rng =
  let x0 = Sim.Rng.range rng 0.0 90.0 and y0 = Sim.Rng.range rng 0.0 90.0 in
  let w = Sim.Rng.range rng 1.0 10.0 and h = Sim.Rng.range rng 1.0 10.0 in
  R.make2 ~x0 ~y0 ~x1:(x0 +. w) ~y1:(y0 +. h)

let test_chord_pubsub_healthy () =
  let rng = Sim.Rng.make 8 in
  let t = Cp.create ~space ~seed:8 () in
  let ids = List.init 40 (fun _ -> Cp.join_subscriber t (random_rect rng)) in
  check_int "size" 40 (Cp.size t);
  check_bool "ring consistent" true (Cp.ring_consistent t);
  for _ = 1 to 40 do
    let p = P.make2 (Sim.Rng.range rng 0.0 100.0) (Sim.Rng.range rng 0.0 100.0) in
    let rep = Cp.publish t ~from:(List.hd ids) p in
    check_int "no FN on healthy ring" 0 rep.Baselines.Report.false_negatives
  done

let test_chord_pubsub_exact_mode () =
  let rng = Sim.Rng.make 9 in
  let t = Cp.create ~exact:true ~space ~seed:9 () in
  let ids = List.init 30 (fun _ -> Cp.join_subscriber t (random_rect rng)) in
  for _ = 1 to 30 do
    let p = P.make2 (Sim.Rng.range rng 0.0 100.0) (Sim.Rng.range rng 0.0 100.0) in
    let rep = Cp.publish t ~from:(List.hd ids) p in
    check_int "no FN" 0 rep.Baselines.Report.false_negatives;
    check_int "no FP in exact mode" 0 rep.Baselines.Report.false_positives
  done

let test_chord_pubsub_churn_fragility () =
  (* The §4 claim: rendezvous state is lost on churn until the
     application re-registers. Wide filters ensure events regularly
     match several survivors. *)
  let rng = Sim.Rng.make 10 in
  let wide_rect rng =
    let x0 = Sim.Rng.range rng 0.0 70.0 and y0 = Sim.Rng.range rng 0.0 70.0 in
    let w = Sim.Rng.range rng 10.0 30.0 and h = Sim.Rng.range rng 10.0 30.0 in
    R.make2 ~x0 ~y0 ~x1:(x0 +. w) ~y1:(y0 +. h)
  in
  let t = Cp.create ~space ~seed:10 () in
  let ids = List.init 40 (fun _ -> Cp.join_subscriber t (wide_rect rng)) in
  let victims = List.filteri (fun i _ -> i mod 3 = 0) ids in
  List.iter (fun v -> Cp.crash t v) victims;
  let survivors = List.filter (fun id -> not (List.mem id victims)) ids in
  (* Publish through the wounded ring: some events must go missing
     (lost rendezvous state / broken routes). *)
  let fn_before = ref 0 in
  for _ = 1 to 150 do
    let p = P.make2 (Sim.Rng.range rng 0.0 100.0) (Sim.Rng.range rng 0.0 100.0) in
    let rep = Cp.publish t ~from:(List.hd survivors) p in
    fn_before := !fn_before + rep.Baselines.Report.false_negatives
  done;
  check_bool
    (Printf.sprintf "churn causes false negatives (%d)" !fn_before)
    true (!fn_before > 0);
  (* After repair + re-registration, accuracy returns. *)
  Cp.repair t;
  check_bool "ring consistent after repair" true (Cp.ring_consistent t);
  let fn_after = ref 0 in
  for _ = 1 to 150 do
    let p = P.make2 (Sim.Rng.range rng 0.0 100.0) (Sim.Rng.range rng 0.0 100.0) in
    let rep = Cp.publish t ~from:(List.hd survivors) p in
    fn_after := !fn_after + rep.Baselines.Report.false_negatives
  done;
  check_int "no FN after repair" 0 !fn_after

(* --- Property: random churn programs ------------------------------------------- *)

let prop_ring_recovers =
  QCheck2.Test.make ~name:"ring re-forms after any join/crash program"
    ~count:25
    QCheck2.Gen.(pair (int_range 1 500) (list_size (int_range 5 30) bool))
    (fun (seed, ops) ->
      let ring = Ring.create ~seed () in
      (* seed population *)
      for _ = 1 to 4 do
        ignore (Ring.join ring);
        ignore (Ring.stabilize ring)
      done;
      List.iter
        (fun is_join ->
          if is_join || Ring.size ring <= 2 then ignore (Ring.join ring)
          else begin
            let ids = Ring.alive_ids ring in
            Ring.crash ring (List.nth ids (seed mod List.length ids))
          end)
        ops;
      match Ring.stabilize ~max_rounds:100 ring with
      | None -> false
      | Some _ ->
          Ring.is_consistent ring
          &&
          (* lookups agree with ground truth everywhere we probe *)
          let ids = Ring.alive_ids ring in
          List.for_all
            (fun probe ->
              let k = Key.of_int (probe * 1_000_003) in
              match Ring.lookup ring ~from:(List.hd ids) k with
              | Some (owner, _) -> Ring.owner_of ring k = Some owner
              | None -> false)
            [ 1; 2; 3; 4; 5 ])

let () =
  Alcotest.run "chord"
    [
      ( "key",
        [
          Alcotest.test_case "arithmetic" `Quick test_key_basics;
          Alcotest.test_case "intervals" `Quick test_key_intervals;
        ] );
      ( "ring",
        [
          Alcotest.test_case "forms a ring" `Quick test_ring_forms;
          Alcotest.test_case "lookups correct" `Quick test_ring_lookup_correct;
          Alcotest.test_case "hops scale" `Slow test_ring_lookup_hops_scale;
          Alcotest.test_case "crash recovery" `Quick test_ring_crash_recovery;
          Alcotest.test_case "single node" `Quick test_ring_single_node;
        ] );
      ( "zorder",
        [
          Alcotest.test_case "point/cell roundtrip" `Quick test_zorder_roundtrip;
          Alcotest.test_case "rect cover" `Quick test_zorder_rect_cover;
        ] );
      ( "pubsub",
        [
          Alcotest.test_case "healthy ring exact delivery" `Quick
            test_chord_pubsub_healthy;
          Alcotest.test_case "exact mode" `Quick test_chord_pubsub_exact_mode;
          Alcotest.test_case "churn fragility + repair" `Quick
            test_chord_pubsub_churn_fragility;
        ] );
      ("properties", [ QCheck_alcotest.to_alcotest prop_ring_recovers ]);
    ]
