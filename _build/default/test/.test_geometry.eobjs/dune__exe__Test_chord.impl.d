test/test_chord.ml: Alcotest Baselines Chord Geometry List Printf QCheck2 QCheck_alcotest Sim
