test/test_drtree.ml: Alcotest Drtree Format Geometry List Option Printf Rtree Sim String Workload
