test/test_filter.ml: Alcotest Bool Filter Fun Geometry List QCheck2 QCheck_alcotest
