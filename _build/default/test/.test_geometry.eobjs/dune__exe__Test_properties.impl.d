test/test_properties.ml: Alcotest Drtree Fun Geometry List QCheck2 QCheck_alcotest Rtree Sim
