test/test_dissemination.ml: Alcotest Drtree Filter Geometry List Printf Sim
