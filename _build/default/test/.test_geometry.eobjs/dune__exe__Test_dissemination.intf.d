test/test_dissemination.mli:
