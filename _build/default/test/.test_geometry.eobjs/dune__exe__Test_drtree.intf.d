test/test_drtree.mli:
