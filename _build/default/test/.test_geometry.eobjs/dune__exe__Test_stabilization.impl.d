test/test_stabilization.ml: Alcotest Drtree Format Geometry List Option Printf Sim
