test/test_soak.ml: Alcotest Drtree Geometry List Printf Sim
