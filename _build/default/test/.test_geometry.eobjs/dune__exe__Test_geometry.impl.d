test/test_geometry.ml: Alcotest Array Bool Float Geometry List QCheck2 QCheck_alcotest
