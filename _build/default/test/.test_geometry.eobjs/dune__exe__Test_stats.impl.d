test/test_stats.ml: Alcotest Float Format List Stats String
