test/test_workload.ml: Alcotest Array Float Geometry Hashtbl List Option Printf Sim Workload
