test/test_extensions.ml: Alcotest Array Drtree Filter Float Fun Geometry List Option Printf QCheck2 QCheck_alcotest Sim String
