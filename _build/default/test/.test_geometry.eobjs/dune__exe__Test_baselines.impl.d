test/test_baselines.ml: Alcotest Baselines Geometry List Printf Sim
