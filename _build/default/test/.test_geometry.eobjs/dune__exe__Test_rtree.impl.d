test/test_rtree.ml: Alcotest Float Fun Geometry Int List Printf QCheck2 QCheck_alcotest Rtree Sim
