test/test_sim.ml: Alcotest Array Float List QCheck2 QCheck_alcotest Sim
