(* Soak test: a large overlay through a long mixed lifetime —
   growth, publication load, churn waves, corruption storms, partial
   drain — asserting the paper's guarantees at every checkpoint. *)

module R = Geometry.Rect
module P = Geometry.Point
module O = Drtree.Overlay
module Inv = Drtree.Invariant
module Rng = Sim.Rng

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let random_rect rng =
  let x0 = Rng.range rng 0.0 95.0 and y0 = Rng.range rng 0.0 95.0 in
  let w = Rng.range rng 0.5 8.0 and h = Rng.range rng 0.5 8.0 in
  R.make2 ~x0 ~y0 ~x1:(x0 +. w) ~y1:(y0 +. h)

let random_point rng =
  P.make2 (Rng.range rng 0.0 100.0) (Rng.range rng 0.0 100.0)

let checkpoint ov rng label =
  check_bool (label ^ ": legal") true (Inv.is_legal ov);
  check_bool (label ^ ": bounded degree") true
    (Inv.max_degree ov <= (O.cfg ov).Drtree.Config.max_fill);
  let ids = O.alive_ids ov in
  if ids <> [] then begin
    let fn = ref 0 in
    for _ = 1 to 25 do
      let rep = O.publish ov ~from:(Rng.pick rng ids) (random_point rng) in
      fn := !fn + rep.O.false_negatives
    done;
    check_int (label ^ ": zero FN") 0 !fn
  end

let test_lifetime () =
  let rng = Rng.make 4242 in
  let ov = O.create ~seed:4242 () in
  let stabilize () =
    check_bool "stabilizes" true
      (O.stabilize ~max_rounds:150 ~legal:Inv.is_legal ov <> None)
  in

  (* Phase 1: grow to 600 subscribers. *)
  for _ = 1 to 600 do
    ignore (O.join ov (random_rect rng))
  done;
  stabilize ();
  checkpoint ov rng "after growth";
  check_bool "height sane" true (O.height ov <= 12);

  (* Phase 2: sustained publication load. *)
  let ids = O.alive_ids ov in
  let fp_total = ref 0 in
  for _ = 1 to 500 do
    let rep = O.publish ov ~from:(Rng.pick rng ids) (random_point rng) in
    check_int "fn during load" 0 rep.O.false_negatives;
    fp_total := !fp_total + rep.O.false_positives
  done;
  let fp_rate = float_of_int !fp_total /. float_of_int (500 * 600) in
  check_bool
    (Printf.sprintf "fp rate %.2f%% below 5%%" (100.0 *. fp_rate))
    true (fp_rate < 0.05);

  (* Phase 3: three churn waves (crashes + joins + corruption). *)
  for wave = 1 to 3 do
    let victims = Drtree.Corrupt.random_victims ov rng ~fraction:0.15 in
    List.iteri
      (fun i v ->
        if i mod 3 = 0 then O.crash ov v
        else if i mod 3 = 1 then O.leave ov v
        else ignore (Drtree.Corrupt.any ov rng v))
      victims;
    for _ = 1 to 30 do
      ignore (O.join ov (random_rect rng))
    done;
    stabilize ();
    checkpoint ov rng (Printf.sprintf "after wave %d" wave)
  done;

  (* Phase 4: drain down to a tenth, with reconnection leaves. *)
  let target = O.size ov / 10 in
  while O.size ov > target do
    let id = List.hd (O.alive_ids ov) in
    if O.size ov mod 2 = 0 then O.leave ov id else O.leave_reconnect ov id;
    if O.size ov mod 25 = 0 then stabilize ()
  done;
  stabilize ();
  checkpoint ov rng "after drain";

  (* Phase 5: regrow and finish. *)
  for _ = 1 to 200 do
    ignore (O.join ov (random_rect rng))
  done;
  stabilize ();
  checkpoint ov rng "after regrowth"

let test_logging_smoke () =
  (* enable_logging must not disturb the protocol. *)
  let rng = Rng.make 5 in
  let ov = O.create ~seed:5 () in
  O.enable_logging ov;
  for _ = 1 to 30 do
    ignore (O.join ov (random_rect rng))
  done;
  check_bool "stabilizes with logging on" true
    (O.stabilize ~legal:Inv.is_legal ov <> None)

let () =
  Alcotest.run "soak"
    [
      ( "lifetime",
        [
          Alcotest.test_case "600-node mixed lifetime" `Slow test_lifetime;
          Alcotest.test_case "logging smoke" `Quick test_logging_smoke;
        ] );
    ]
