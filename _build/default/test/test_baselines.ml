(* Tests for the baseline routers used in experiment E9. *)

module R = Geometry.Rect
module P = Geometry.Point
module Ct = Baselines.Containment_tree
module Pd = Baselines.Per_dimension
module Fl = Baselines.Flooding
module Dht = Baselines.Dht_rendezvous
module Int_set = Baselines.Report.Int_set

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let rect x0 y0 x1 y1 = R.make2 ~x0 ~y0 ~x1 ~y1

let random_rect rng =
  let x0 = Sim.Rng.range rng 0.0 90.0 and y0 = Sim.Rng.range rng 0.0 90.0 in
  let w = Sim.Rng.range rng 1.0 10.0 and h = Sim.Rng.range rng 1.0 10.0 in
  rect x0 y0 (x0 +. w) (y0 +. h)

let random_point rng =
  P.make2 (Sim.Rng.range rng 0.0 100.0) (Sim.Rng.range rng 0.0 100.0)

(* --- Containment tree ------------------------------------------------------- *)

let test_ct_structure () =
  let t = Ct.create () in
  let big = Ct.add t (rect 0.0 0.0 10.0 10.0) in
  let mid = Ct.add t (rect 1.0 1.0 6.0 6.0) in
  let small = Ct.add t (rect 2.0 2.0 4.0 4.0) in
  let far = Ct.add t (rect 50.0 50.0 60.0 60.0) in
  ignore (big, mid, small, far);
  check_int "size" 4 (Ct.size t);
  check_int "depth 3" 3 (Ct.depth t);
  check_bool "degree small" true (Ct.max_degree t <= 2)

let test_ct_exact () =
  let rng = Sim.Rng.make 1 in
  let t = Ct.create () in
  let entries = List.init 100 (fun _ ->
      let r = random_rect rng in
      (Ct.add t r, r)) in
  for _ = 1 to 50 do
    let p = random_point rng in
    let from = fst (List.hd entries) in
    let rep = Ct.publish t ~from p in
    check_int "no FP" 0 rep.Baselines.Report.false_positives;
    check_int "no FN" 0 rep.Baselines.Report.false_negatives
  done

let test_ct_insert_order_independent_accuracy () =
  (* Insert the containee before the container: accuracy must hold. *)
  let t = Ct.create () in
  let small = Ct.add t (rect 2.0 2.0 4.0 4.0) in
  let big = Ct.add t (rect 0.0 0.0 10.0 10.0) in
  let rep = Ct.publish t ~from:big (P.make2 3.0 3.0) in
  check_bool "both matched" true
    (Int_set.equal rep.Baselines.Report.matched (Int_set.of_list [ small; big ]));
  check_int "no FN" 0 rep.Baselines.Report.false_negatives

let test_ct_remove () =
  let t = Ct.create () in
  let big = Ct.add t (rect 0.0 0.0 10.0 10.0) in
  let mid = Ct.add t (rect 1.0 1.0 6.0 6.0) in
  let small = Ct.add t (rect 2.0 2.0 4.0 4.0) in
  Ct.remove t mid;
  check_int "size" 2 (Ct.size t);
  let rep = Ct.publish t ~from:big (P.make2 3.0 3.0) in
  check_bool "small still reachable" true
    (Int_set.mem small rep.Baselines.Report.delivered);
  check_int "no FN after removal" 0 rep.Baselines.Report.false_negatives

let test_ct_virtual_root_degree () =
  (* Disjoint filters all hang off the virtual root: the degree
     pathology the paper describes. *)
  let t = Ct.create () in
  for i = 0 to 19 do
    let o = 5.0 *. float_of_int i in
    ignore (Ct.add t (rect o 0.0 (o +. 2.0) 2.0))
  done;
  check_int "virtual root fan-out" 20 (Ct.max_degree t)

(* --- Per-dimension trees ------------------------------------------------------ *)

let test_pd_no_fn_and_fp_exist () =
  let rng = Sim.Rng.make 2 in
  let t = Pd.create ~dims:2 in
  let ids = List.init 150 (fun _ -> Pd.add t (random_rect rng)) in
  let fp_total = ref 0 in
  for _ = 1 to 60 do
    let p = random_point rng in
    let rep = Pd.publish t ~from:(List.hd ids) p in
    check_int "no FN" 0 rep.Baselines.Report.false_negatives;
    fp_total := !fp_total + rep.Baselines.Report.false_positives
  done;
  (* Single-dimension matching necessarily over-delivers on this
     workload. *)
  check_bool "per-dimension produces false positives" true (!fp_total > 0)

let test_pd_dimension_trees () =
  let t = Pd.create ~dims:2 in
  (* A filter constraining only x joins only the x tree; an event
     far away in x must not reach it. *)
  let xonly =
    Pd.add t
      (R.make ~low:[| 10.0; neg_infinity |] ~high:[| 20.0; infinity |])
  in
  let other = Pd.add t (rect 0.0 0.0 5.0 5.0) in
  let rep = Pd.publish t ~from:other (P.make2 50.0 1.0) in
  check_bool "xonly spared" true
    (not (Int_set.mem xonly rep.Baselines.Report.received))

let test_pd_remove () =
  let rng = Sim.Rng.make 3 in
  let t = Pd.create ~dims:2 in
  let ids = List.init 30 (fun _ -> Pd.add t (random_rect rng)) in
  List.iteri (fun i id -> if i mod 2 = 0 then Pd.remove t id) ids;
  check_int "half left" 15 (Pd.size t);
  let p = random_point rng in
  let rep = Pd.publish t ~from:(List.nth ids 1) p in
  check_int "no FN after removals" 0 rep.Baselines.Report.false_negatives

(* --- Flooding ------------------------------------------------------------------- *)

let test_flooding () =
  let rng = Sim.Rng.make 4 in
  let t = Fl.create () in
  let ids = List.init 50 (fun _ -> Fl.add t (random_rect rng)) in
  let p = random_point rng in
  let rep = Fl.publish t ~from:(List.hd ids) p in
  check_int "messages = n-1" 49 rep.Baselines.Report.messages;
  check_int "everyone receives" 50
    (Int_set.cardinal rep.Baselines.Report.received);
  check_int "no FN" 0 rep.Baselines.Report.false_negatives;
  check_int "fp = n - matched - publisher?" rep.Baselines.Report.false_positives
    (50
    - Int_set.cardinal rep.Baselines.Report.matched
    - (if Int_set.mem (List.hd ids) rep.Baselines.Report.matched then 0 else 1));
  Fl.remove t (List.hd ids);
  check_int "size" 49 (Fl.size t)

(* --- DHT rendezvous ---------------------------------------------------------------- *)

let space = rect 0.0 0.0 100.0 100.0

let test_dht_no_fn () =
  let rng = Sim.Rng.make 5 in
  let t = Dht.create ~space () in
  let ids = List.init 100 (fun _ -> Dht.add t (random_rect rng)) in
  for _ = 1 to 60 do
    let p = random_point rng in
    let rep = Dht.publish t ~from:(List.hd ids) p in
    check_int "no FN" 0 rep.Baselines.Report.false_negatives
  done

let test_dht_cell_granularity_fp () =
  let t = Dht.create ~bits_per_dim:2 ~space () in
  (* 4x4 grid of 25-wide cells: two disjoint filters in one cell. *)
  let a = Dht.add t (rect 0.0 0.0 5.0 5.0) in
  let b = Dht.add t (rect 20.0 20.0 24.0 24.0) in
  ignore b;
  (* An event in the same cell but matching only b. *)
  let rep = Dht.publish t ~from:b (P.make2 22.0 22.0) in
  check_bool "a receives spuriously" true
    (Int_set.mem a rep.Baselines.Report.received);
  check_bool "fp > 0" true (rep.Baselines.Report.false_positives > 0);
  (* exact mode filters at the rendezvous *)
  let te = Dht.create ~bits_per_dim:2 ~exact:true ~space () in
  let a' = Dht.add te (rect 0.0 0.0 5.0 5.0) in
  let b' = Dht.add te (rect 20.0 20.0 24.0 24.0) in
  ignore a';
  let rep' = Dht.publish te ~from:b' (P.make2 22.0 22.0) in
  check_int "exact mode no fp" 0 rep'.Baselines.Report.false_positives

let test_dht_registration_cost_grows_with_extent () =
  let t = Dht.create ~space () in
  ignore (Dht.add t (rect 0.0 0.0 2.0 2.0));
  let small_cost = Dht.registration_messages t in
  let t2 = Dht.create ~space () in
  ignore (Dht.add t2 (rect 0.0 0.0 80.0 80.0));
  let big_cost = Dht.registration_messages t2 in
  check_bool "wide filters register on many cells" true (big_cost > small_cost);
  check_bool "storage hotspot measured" true (Dht.max_registrations t2 >= 1)

let test_dht_remove () =
  let t = Dht.create ~space () in
  let a = Dht.add t (rect 10.0 10.0 30.0 30.0) in
  Dht.remove t a;
  check_int "empty" 0 (Dht.size t);
  let b = Dht.add t (rect 10.0 10.0 30.0 30.0) in
  let rep = Dht.publish t ~from:b (P.make2 20.0 20.0) in
  check_bool "a not delivered" true
    (not (Int_set.mem a rep.Baselines.Report.delivered) || a = b)

(* --- Sub-2-Sub gossip --------------------------------------------------------------- *)

module S2s = Baselines.Sub2sub

let clustered_rects rng n =
  (* Two tight interest communities. *)
  List.init n (fun i ->
      let cx, cy = if i mod 2 = 0 then (20.0, 20.0) else (70.0, 70.0) in
      let x0 = cx +. Sim.Rng.range rng (-8.0) 8.0 in
      let y0 = cy +. Sim.Rng.range rng (-8.0) 8.0 in
      rect x0 y0 (x0 +. 10.0) (y0 +. 10.0))

let test_s2s_gossip_converges () =
  let rng = Sim.Rng.make 40 in
  let t = S2s.create ~seed:40 () in
  List.iter (fun r -> ignore (S2s.add t r)) (clustered_rects rng 60);
  let before = S2s.mean_view_overlap t in
  S2s.gossip t ~rounds:15;
  let after = S2s.mean_view_overlap t in
  check_bool
    (Printf.sprintf "semantic views improve (%.2f -> %.2f)" before after)
    true
    (after > before && after > 0.8)

let test_s2s_accuracy_improves_with_gossip () =
  let rng = Sim.Rng.make 41 in
  let build rounds =
    let t = S2s.create ~seed:41 () in
    let ids = List.mapi (fun i r -> (i, r)) (clustered_rects rng 60) in
    List.iter (fun (_, r) -> ignore (S2s.add t r)) ids;
    S2s.gossip t ~rounds;
    let fn = ref 0 and total = ref 0 in
    for _ = 1 to 60 do
      (* events inside the communities, so they have matchers *)
      let cx, cy = if Sim.Rng.bool rng then (22.0, 22.0) else (72.0, 72.0) in
      let p =
        P.make2
          (cx +. Sim.Rng.range rng (-5.0) 5.0)
          (cy +. Sim.Rng.range rng (-5.0) 5.0)
      in
      let rep = S2s.publish t ~from:(Sim.Rng.int rng 60) p in
      fn := !fn + rep.Baselines.Report.false_negatives;
      total := !total + Int_set.cardinal rep.Baselines.Report.matched
    done;
    (!fn, !total)
  in
  let fn0, _ = build 0 in
  let fn15, total15 = build 15 in
  check_bool
    (Printf.sprintf "gossip reduces FN (%d -> %d of %d)" fn0 fn15 total15)
    true
    (fn15 < fn0);
  (* Even converged, this design is not FN-free in general — that is
     the §4 critique. We only require substantial improvement. *)
  check_bool "converged FN rate low" true
    (float_of_int fn15 /. float_of_int (max 1 total15) < 0.2)

let test_s2s_remove () =
  let rng = Sim.Rng.make 42 in
  let t = S2s.create ~seed:42 () in
  let ids = List.map (fun r -> S2s.add t r) (clustered_rects rng 20) in
  S2s.gossip t ~rounds:5;
  S2s.remove t (List.hd ids);
  check_int "size" 19 (S2s.size t);
  (* No report ever mentions the removed node. *)
  let p = P.make2 22.0 22.0 in
  let rep = S2s.publish t ~from:(List.nth ids 2) p in
  check_bool "removed absent" true
    (not (Int_set.mem (List.hd ids) rep.Baselines.Report.received))

(* --- Cross-check against the DR-tree ---------------------------------------------- *)

let test_all_routers_agree_on_ground_truth () =
  (* Every baseline computes the same matched set for the same
     workload (sanity for E9 comparability). *)
  let rng = Sim.Rng.make 6 in
  let rects = List.init 80 (fun _ -> random_rect rng) in
  let ct = Ct.create () and pd = Pd.create ~dims:2 and fl = Fl.create () in
  let dht = Dht.create ~space () in
  List.iter
    (fun r ->
      ignore (Ct.add ct r);
      ignore (Pd.add pd r);
      ignore (Fl.add fl r);
      ignore (Dht.add dht r))
    rects;
  for _ = 1 to 30 do
    let p = random_point rng in
    let m1 = (Ct.publish ct ~from:0 p).Baselines.Report.matched in
    let m2 = (Pd.publish pd ~from:0 p).Baselines.Report.matched in
    let m3 = (Fl.publish fl ~from:0 p).Baselines.Report.matched in
    let m4 = (Dht.publish dht ~from:0 p).Baselines.Report.matched in
    check_bool "same ground truth" true
      (Int_set.equal m1 m2 && Int_set.equal m2 m3 && Int_set.equal m3 m4)
  done

let () =
  Alcotest.run "baselines"
    [
      ( "containment-tree",
        [
          Alcotest.test_case "structure" `Quick test_ct_structure;
          Alcotest.test_case "exact delivery" `Quick test_ct_exact;
          Alcotest.test_case "order independence" `Quick
            test_ct_insert_order_independent_accuracy;
          Alcotest.test_case "removal" `Quick test_ct_remove;
          Alcotest.test_case "virtual root degree" `Quick
            test_ct_virtual_root_degree;
        ] );
      ( "per-dimension",
        [
          Alcotest.test_case "no FN, FP exist" `Quick test_pd_no_fn_and_fp_exist;
          Alcotest.test_case "dimension membership" `Quick
            test_pd_dimension_trees;
          Alcotest.test_case "removal" `Quick test_pd_remove;
        ] );
      ("flooding", [ Alcotest.test_case "broadcast costs" `Quick test_flooding ]);
      ( "dht",
        [
          Alcotest.test_case "no FN" `Quick test_dht_no_fn;
          Alcotest.test_case "cell-granular FPs" `Quick
            test_dht_cell_granularity_fp;
          Alcotest.test_case "registration cost" `Quick
            test_dht_registration_cost_grows_with_extent;
          Alcotest.test_case "removal" `Quick test_dht_remove;
        ] );
      ( "sub2sub",
        [
          Alcotest.test_case "gossip converges" `Quick test_s2s_gossip_converges;
          Alcotest.test_case "accuracy improves with gossip" `Quick
            test_s2s_accuracy_improves_with_gossip;
          Alcotest.test_case "removal" `Quick test_s2s_remove;
        ] );
      ( "cross",
        [ Alcotest.test_case "shared ground truth" `Quick
            test_all_routers_agree_on_ground_truth ] );
    ]
