(* Tests for the content-based filtering model (§2.1). *)

module V = Filter.Value
module Sch = Filter.Schema
module Pred = Filter.Predicate
module Sub = Filter.Subscription
module Ev = Filter.Event
module Cg = Filter.Containment
module R = Geometry.Rect

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_float = Alcotest.(check (float 1e-9))

let schema = Sch.make [ "x"; "y" ]

(* --- Value ---------------------------------------------------------------- *)

let test_value_equal () =
  check_bool "int eq" true (V.equal (V.int 3) (V.int 3));
  check_bool "int/float not structurally eq" false (V.equal (V.int 1) (V.float 1.0));
  check_bool "string eq" true (V.equal (V.string "a") (V.string "a"))

let test_value_numeric () =
  check_bool "int < float" true (V.compare_numeric (V.int 1) (V.float 1.5) = Some (-1));
  check_bool "coerced eq" true (V.compare_numeric (V.int 2) (V.float 2.0) = Some 0);
  check_bool "string none" true (V.compare_numeric (V.string "a") (V.int 1) = None)

let test_value_to_float () =
  check_float "int" 42.0 (V.to_float (V.int 42));
  check_float "float" 1.5 (V.to_float (V.float 1.5));
  let h1 = V.to_float (V.string "hello") and h2 = V.to_float (V.string "hello") in
  check_float "string hash stable" h1 h2;
  check_bool "string hash in range" true (h1 >= 0.0 && h1 < 1e9)

(* --- Schema ---------------------------------------------------------------- *)

let test_schema () =
  check_int "dims" 2 (Sch.dims schema);
  check_bool "dimension" true (Sch.dimension schema "y" = Some 1);
  check_bool "unknown" true (Sch.dimension schema "z" = None);
  Alcotest.(check string) "attribute" "x" (Sch.attribute schema 0);
  check_bool "mem" true (Sch.mem schema "x");
  Alcotest.check_raises "duplicate"
    (Invalid_argument "Schema.make: duplicate attribute x") (fun () ->
      ignore (Sch.make [ "x"; "x" ]))

(* --- Predicate ------------------------------------------------------------- *)

let test_predicate_eval () =
  let lt = Pred.make "x" Pred.Lt (V.float 5.0) in
  check_bool "lt true" true (Pred.eval lt (V.float 4.9));
  check_bool "lt false on eq" false (Pred.eval lt (V.float 5.0));
  let ge = Pred.make "x" Pred.Ge (V.int 3) in
  check_bool "ge eq" true (Pred.eval ge (V.int 3));
  check_bool "ge coerce" true (Pred.eval ge (V.float 3.5));
  let eq = Pred.make "s" Pred.Eq (V.string "abc") in
  check_bool "string eq" true (Pred.eval eq (V.string "abc"));
  check_bool "string neq" false (Pred.eval eq (V.string "abd"));
  let bw = Pred.between "x" (V.float 1.0) (V.float 2.0) in
  check_bool "between inside" true (Pred.eval bw (V.float 1.5));
  check_bool "between lo edge" true (Pred.eval bw (V.float 1.0));
  check_bool "between outside" false (Pred.eval bw (V.float 2.1))

let test_predicate_interval () =
  let lo, hi = Pred.interval (Pred.make "x" Pred.Le (V.float 7.0)) in
  check_float "le lo" neg_infinity lo;
  check_float "le hi" 7.0 hi;
  let lo, hi = Pred.interval (Pred.make "x" Pred.Eq (V.float 2.0)) in
  check_float "eq degenerate lo" 2.0 lo;
  check_float "eq degenerate hi" 2.0 hi;
  let lo, hi = Pred.interval (Pred.between "x" (V.int 1) (V.int 9)) in
  check_float "between lo" 1.0 lo;
  check_float "between hi" 9.0 hi

let test_predicate_errors () =
  Alcotest.check_raises "between via make"
    (Invalid_argument "Predicate.make: use Predicate.between") (fun () ->
      ignore (Pred.make "x" Pred.Between (V.int 0)));
  Alcotest.check_raises "order on string"
    (Invalid_argument "Predicate.make: order comparison on string value")
    (fun () -> ignore (Pred.make "x" Pred.Lt (V.string "a")));
  Alcotest.check_raises "inverted range"
    (Invalid_argument "Predicate.between: lo > hi") (fun () ->
      ignore (Pred.between "x" (V.float 2.0) (V.float 1.0)))

(* --- Subscription ----------------------------------------------------------- *)

let range_sub xlo xhi ylo yhi =
  Sub.make
    [
      Pred.between "x" (V.float xlo) (V.float xhi);
      Pred.between "y" (V.float ylo) (V.float yhi);
    ]

let test_subscription_rect () =
  let s = range_sub 1.0 4.0 2.0 6.0 in
  let r = Sub.rect schema s in
  check_bool "rect" true (R.equal r (R.make2 ~x0:1.0 ~y0:2.0 ~x1:4.0 ~y1:6.0));
  (* A one-attribute filter is unbounded in the other dimension. *)
  let s1 = Sub.make [ Pred.make "x" Pred.Ge (V.float 3.0) ] in
  let r1 = Sub.rect schema s1 in
  check_float "x bounded" 3.0 (R.low r1 0);
  check_float "y unbounded below" neg_infinity (R.low r1 1);
  check_float "y unbounded above" infinity (R.high r1 1)

let test_subscription_matches () =
  let s = range_sub 1.0 4.0 2.0 6.0 in
  check_bool "inside" true (Sub.matches s (Ev.make [ ("x", V.float 2.0); ("y", V.float 3.0) ]));
  check_bool "outside x" false (Sub.matches s (Ev.make [ ("x", V.float 5.0); ("y", V.float 3.0) ]));
  check_bool "missing attr" false (Sub.matches s (Ev.make [ ("x", V.float 2.0) ]));
  (* Strict predicate: exact matching distinguishes Lt from Le even
     though the embedding is closed. *)
  let strict = Sub.make [ Pred.make "x" Pred.Lt (V.float 5.0) ] in
  check_bool "strict boundary excluded" false
    (Sub.matches strict (Ev.make [ ("x", V.float 5.0) ]))

let test_subscription_contains () =
  let big = range_sub 0.0 10.0 0.0 10.0 in
  let small = range_sub 2.0 5.0 3.0 7.0 in
  check_bool "contains" true (Sub.contains schema big small);
  check_bool "not contains" false (Sub.contains schema small big);
  check_bool "reflexive" true (Sub.contains schema big big)

let test_subscription_contradiction () =
  Alcotest.check_raises "contradictory"
    (Invalid_argument "Subscription.make: contradictory predicates on x")
    (fun () ->
      ignore
        (Sub.make
           [
             Pred.make "x" Pred.Ge (V.float 5.0);
             Pred.make "x" Pred.Le (V.float 1.0);
           ]))

let test_subscription_of_rect_roundtrip () =
  let r = R.make2 ~x0:1.0 ~y0:2.0 ~x1:4.0 ~y1:6.0 in
  let s = Sub.of_rect schema r in
  check_bool "roundtrip" true (R.equal (Sub.rect schema s) r);
  (* One-sided rectangle. *)
  let half = R.make ~low:[| 3.0; neg_infinity |] ~high:[| infinity; 5.0 |] in
  let s2 = Sub.of_rect schema half in
  check_bool "one-sided roundtrip" true (R.equal (Sub.rect schema s2) half);
  (* Fully unbounded. *)
  let s3 = Sub.of_rect schema (R.universe 2) in
  check_bool "universe roundtrip" true (R.equal (Sub.rect schema s3) (R.universe 2))

(* --- Event ------------------------------------------------------------------ *)

let test_event () =
  let e = Ev.make [ ("x", V.float 1.0); ("y", V.int 2) ] in
  check_bool "value" true (Ev.value e "y" = Some (V.int 2));
  check_bool "missing" true (Ev.value e "z" = None);
  let p = Ev.to_point schema e in
  check_bool "to_point" true (Geometry.Point.equal p (Geometry.Point.make2 1.0 2.0));
  Alcotest.check_raises "missing attr"
    (Invalid_argument "Event.to_point: missing attribute y") (fun () ->
      ignore (Ev.to_point schema (Ev.make [ ("x", V.float 1.0) ])));
  Alcotest.check_raises "duplicate"
    (Invalid_argument "Event.make: duplicate attribute x") (fun () ->
      ignore (Ev.make [ ("x", V.int 1); ("x", V.int 2) ]));
  let e2 = Ev.of_point schema (Geometry.Point.make2 3.0 4.0) in
  check_bool "of_point roundtrip" true
    (Geometry.Point.equal (Ev.to_point schema e2) (Geometry.Point.make2 3.0 4.0))

(* --- Containment graph (Figure 1) -------------------------------------------- *)

(* A miniature of the paper's Figure 1: S2 and S3 are large filters;
   S4 is inside both; S1 is inside S2 only; S5 is disjoint. *)
let fig1_rects =
  [
    ("S1", R.make2 ~x0:1.0 ~y0:1.0 ~x1:3.0 ~y1:3.0);
    ("S2", R.make2 ~x0:0.0 ~y0:0.0 ~x1:6.0 ~y1:6.0);
    ("S3", R.make2 ~x0:2.0 ~y0:2.0 ~x1:9.0 ~y1:9.0);
    ("S4", R.make2 ~x0:3.0 ~y0:3.0 ~x1:5.0 ~y1:5.0);
    ("S5", R.make2 ~x0:20.0 ~y0:20.0 ~x1:22.0 ~y1:22.0);
  ]

let test_containment_graph () =
  let g = Cg.build ~rect:snd fig1_rects in
  check_int "size" 5 (Cg.size g);
  (* indices: S1=0 S2=1 S3=2 S4=3 S5=4 *)
  check_bool "S2 contains S1" true (Cg.contains g 1 0);
  check_bool "S2 contains S4" true (Cg.contains g 1 3);
  check_bool "S3 contains S4" true (Cg.contains g 2 3);
  check_bool "S2 not contains S3" false (Cg.contains g 1 2);
  check_bool "reflexive" true (Cg.contains g 0 0);
  check_bool "S4 parents" true
    (List.sort compare (Cg.parents g 3) = [ 1; 2 ]);
  check_bool "S1 parent is S2 only" true (Cg.parents g 0 = [ 1 ]);
  check_bool "roots" true (List.sort compare (Cg.roots g) = [ 1; 2; 4 ]);
  check_bool "S2 children" true (List.sort compare (Cg.children g 1) = [ 0; 3 ])

let test_containment_transitive_reduction () =
  (* A chain a > b > c: the reduction must not keep the a->c edge. *)
  let chain =
    [
      R.make2 ~x0:0.0 ~y0:0.0 ~x1:10.0 ~y1:10.0;
      R.make2 ~x0:1.0 ~y0:1.0 ~x1:8.0 ~y1:8.0;
      R.make2 ~x0:2.0 ~y0:2.0 ~x1:6.0 ~y1:6.0;
    ]
  in
  let g = Cg.build ~rect:Fun.id chain in
  check_bool "c's only direct parent is b" true (Cg.parents g 2 = [ 1 ]);
  check_bool "a's only direct child is b" true (Cg.children g 0 = [ 1 ]);
  check_bool "a still (transitively) contains c" true (Cg.contains g 0 2)

let test_containment_equal_rects () =
  let r = R.make2 ~x0:0.0 ~y0:0.0 ~x1:1.0 ~y1:1.0 in
  let g = Cg.build ~rect:Fun.id [ r; r ] in
  (* Earlier item is treated as the container; no cycle. *)
  check_bool "first contains second" true (Cg.contains g 0 1);
  check_bool "second not contains first" false (Cg.contains g 1 0);
  check_bool "roots" true (Cg.roots g = [ 0 ])

(* --- Properties ---------------------------------------------------------------- *)

let sub_gen =
  let open QCheck2.Gen in
  map4
    (fun x0 y0 dx dy ->
      Sub.of_rect schema
        (R.make2 ~x0 ~y0 ~x1:(x0 +. abs_float dx) ~y1:(y0 +. abs_float dy)))
    (float_range 0.0 50.0) (float_range 0.0 50.0) (float_range 0.1 30.0)
    (float_range 0.1 30.0)

let event_gen =
  let open QCheck2.Gen in
  map2
    (fun x y -> Ev.make [ ("x", V.float x); ("y", V.float y) ])
    (float_range (-10.0) 90.0) (float_range (-10.0) 90.0)

let prop_match_implies_rect =
  QCheck2.Test.make ~name:"exact match implies spatial containment" ~count:500
    QCheck2.Gen.(pair sub_gen event_gen)
    (fun (s, e) ->
      (not (Sub.matches s e))
      || R.contains_point (Sub.rect schema s) (Ev.to_point schema e))

let prop_containment_consistent =
  QCheck2.Test.make ~name:"sub containment = rect containment" ~count:500
    QCheck2.Gen.(pair sub_gen sub_gen)
    (fun (a, b) ->
      Bool.equal
        (Sub.contains schema a b)
        (R.contains (Sub.rect schema a) (Sub.rect schema b)))

let prop_containment_semantic =
  QCheck2.Test.make ~name:"containment implies match implication" ~count:500
    QCheck2.Gen.(triple sub_gen sub_gen event_gen)
    (fun (a, b, e) ->
      (* If a contains b and e matches b, then e matches a. *)
      (not (Sub.contains schema a b)) || (not (Sub.matches b e)) || Sub.matches a e)

let () =
  let qsuite =
    List.map QCheck_alcotest.to_alcotest
      [ prop_match_implies_rect; prop_containment_consistent;
        prop_containment_semantic ]
  in
  Alcotest.run "filter"
    [
      ( "value",
        [
          Alcotest.test_case "equality" `Quick test_value_equal;
          Alcotest.test_case "numeric order" `Quick test_value_numeric;
          Alcotest.test_case "spatial embedding" `Quick test_value_to_float;
        ] );
      ("schema", [ Alcotest.test_case "basics" `Quick test_schema ]);
      ( "predicate",
        [
          Alcotest.test_case "eval" `Quick test_predicate_eval;
          Alcotest.test_case "interval" `Quick test_predicate_interval;
          Alcotest.test_case "errors" `Quick test_predicate_errors;
        ] );
      ( "subscription",
        [
          Alcotest.test_case "rect embedding" `Quick test_subscription_rect;
          Alcotest.test_case "exact matching" `Quick test_subscription_matches;
          Alcotest.test_case "containment" `Quick test_subscription_contains;
          Alcotest.test_case "contradiction" `Quick test_subscription_contradiction;
          Alcotest.test_case "of_rect roundtrip" `Quick
            test_subscription_of_rect_roundtrip;
        ] );
      ("event", [ Alcotest.test_case "basics" `Quick test_event ]);
      ( "containment-graph",
        [
          Alcotest.test_case "figure 1" `Quick test_containment_graph;
          Alcotest.test_case "transitive reduction" `Quick
            test_containment_transitive_reduction;
          Alcotest.test_case "equal rectangles" `Quick test_containment_equal_rects;
        ] );
      ("properties", qsuite);
    ]
