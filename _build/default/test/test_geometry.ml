(* Unit and property tests for the geometry substrate. *)

module P = Geometry.Point
module R = Geometry.Rect

let check_float = Alcotest.(check (float 1e-9))
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* --- Point -------------------------------------------------------------- *)

let test_point_basics () =
  let p = P.make2 1.0 2.0 in
  check_int "dims" 2 (P.dims p);
  check_float "x" 1.0 (P.coord p 0);
  check_float "y" 2.0 (P.coord p 1);
  check_bool "equal" true (P.equal p (P.of_list [ 1.0; 2.0 ]));
  check_bool "not equal" false (P.equal p (P.make2 1.0 2.5))

let test_point_errors () =
  Alcotest.check_raises "empty" (Invalid_argument "Point.make: empty coordinates")
    (fun () -> ignore (P.make [||]));
  Alcotest.check_raises "nan" (Invalid_argument "Point.make: NaN coordinate")
    (fun () -> ignore (P.make [| Float.nan |]));
  Alcotest.check_raises "oob" (Invalid_argument "Point.coord: out of bounds")
    (fun () -> ignore (P.coord (P.make2 0.0 0.0) 2))

let test_point_distance () =
  let a = P.make2 0.0 0.0 and b = P.make2 3.0 4.0 in
  check_float "euclidean" 5.0 (P.distance a b);
  check_float "squared" 25.0 (P.distance_sq a b);
  check_float "self" 0.0 (P.distance a a)

let test_point_immutable () =
  let arr = [| 1.0; 2.0 |] in
  let p = P.make arr in
  arr.(0) <- 99.0;
  check_float "copied on make" 1.0 (P.coord p 0);
  let out = P.coords p in
  out.(0) <- 42.0;
  check_float "copied on coords" 1.0 (P.coord p 0)

let test_point_compare () =
  check_bool "lt" true (P.compare (P.make2 1.0 0.0) (P.make2 2.0 0.0) < 0);
  check_bool "eq" true (P.compare (P.make2 1.0 0.0) (P.make2 1.0 0.0) = 0);
  check_bool "second coord" true
    (P.compare (P.make2 1.0 1.0) (P.make2 1.0 2.0) < 0)

(* --- Rect --------------------------------------------------------------- *)

let rect x0 y0 x1 y1 = R.make2 ~x0 ~y0 ~x1 ~y1

let test_rect_basics () =
  let r = rect 1.0 2.0 4.0 6.0 in
  check_int "dims" 2 (R.dims r);
  check_float "area" 12.0 (R.area r);
  check_float "margin" 7.0 (R.margin r);
  check_bool "center" true (P.equal (R.center r) (P.make2 2.5 4.0))

let test_rect_normalizes () =
  let r = R.make2 ~x0:4.0 ~y0:6.0 ~x1:1.0 ~y1:2.0 in
  check_float "low x" 1.0 (R.low r 0);
  check_float "high y" 6.0 (R.high r 1)

let test_rect_errors () =
  Alcotest.check_raises "low > high" (Invalid_argument "Rect.make: low > high")
    (fun () -> ignore (R.make ~low:[| 1.0 |] ~high:[| 0.0 |]));
  Alcotest.check_raises "mismatch"
    (Invalid_argument "Rect.make: bound lengths differ") (fun () ->
      ignore (R.make ~low:[| 0.0 |] ~high:[| 1.0; 2.0 |]));
  Alcotest.check_raises "dim mismatch"
    (Invalid_argument "Rect.contains: dimension mismatch") (fun () ->
      ignore (R.contains (R.universe 2) (R.universe 3)))

let test_rect_contains () =
  let outer = rect 0.0 0.0 10.0 10.0 in
  let inner = rect 2.0 2.0 5.0 5.0 in
  check_bool "contains" true (R.contains outer inner);
  check_bool "not contained" false (R.contains inner outer);
  check_bool "self" true (R.contains outer outer);
  check_bool "boundary" true (R.contains outer (rect 0.0 0.0 10.0 5.0));
  check_bool "point inside" true (R.contains_point outer (P.make2 5.0 5.0));
  check_bool "point on edge" true (R.contains_point outer (P.make2 10.0 10.0));
  check_bool "point outside" false (R.contains_point outer (P.make2 10.1 5.0))

let test_rect_intersection () =
  let a = rect 0.0 0.0 4.0 4.0 and b = rect 2.0 2.0 6.0 6.0 in
  check_bool "intersects" true (R.intersects a b);
  (match R.intersection a b with
  | Some i ->
      check_float "ix area" 4.0 (R.area i);
      check_bool "ix rect" true (R.equal i (rect 2.0 2.0 4.0 4.0))
  | None -> Alcotest.fail "expected overlap");
  check_float "intersection_area" 4.0 (R.intersection_area a b);
  let c = rect 10.0 10.0 12.0 12.0 in
  check_bool "disjoint" false (R.intersects a c);
  check_bool "disjoint none" true (R.intersection a c = None);
  check_float "disjoint area" 0.0 (R.intersection_area a c);
  (* Touching rectangles share a boundary. *)
  let d = rect 4.0 0.0 8.0 4.0 in
  check_bool "touching" true (R.intersects a d);
  check_float "touching area" 0.0 (R.intersection_area a d)

let test_rect_union () =
  let a = rect 0.0 0.0 2.0 2.0 and b = rect 5.0 5.0 6.0 6.0 in
  let u = R.union a b in
  check_bool "covers a" true (R.contains u a);
  check_bool "covers b" true (R.contains u b);
  check_float "bounds" 6.0 (R.high u 0);
  check_bool "union_many" true
    (R.equal (R.union_many [ a; b ]) u);
  Alcotest.check_raises "union_many []"
    (Invalid_argument "Rect.union_many: empty list") (fun () ->
      ignore (R.union_many []))

let test_rect_enlargement () =
  let a = rect 0.0 0.0 2.0 2.0 in
  check_float "no growth" 0.0 (R.enlargement a (rect 1.0 1.0 2.0 2.0));
  check_float "growth" 12.0 (R.enlargement a (rect 0.0 0.0 4.0 4.0));
  (* waste = dead space of grouping: negative when the pair overlaps
     fully, positive for distant rectangles. *)
  check_float "waste of self" (-4.0) (R.waste a a);
  check_float "waste of distant pair" 98.0
    (R.waste (rect 0.0 0.0 1.0 1.0) (rect 9.0 9.0 10.0 10.0))

let test_rect_unbounded () =
  let u = R.universe 2 in
  check_bool "contains all" true (R.contains u (rect (-1e9) (-1e9) 1e9 1e9));
  check_bool "area inf" true (Float.is_integer (R.area u) = false || R.area u = infinity);
  check_float "area" infinity (R.area u);
  (* A degenerate slab in an unbounded space has zero area. *)
  let slab = R.make ~low:[| 0.0; neg_infinity |] ~high:[| 0.0; infinity |] in
  check_float "degenerate slab" 0.0 (R.area slab);
  check_bool "point in universe" true (R.contains_point u (P.make2 1e18 ~-.1e18))

let test_rect_of_points () =
  let r = R.of_points [ P.make2 1.0 5.0; P.make2 3.0 2.0; P.make2 2.0 9.0 ] in
  check_bool "mbr of points" true (R.equal r (rect 1.0 2.0 3.0 9.0));
  let d = R.of_point (P.make2 4.0 4.0) in
  check_float "degenerate area" 0.0 (R.area d);
  check_bool "contains its point" true (R.contains_point d (P.make2 4.0 4.0))

let test_rect_distance_to_point () =
  let r = rect 0.0 0.0 10.0 10.0 in
  check_float "inside" 0.0 (R.distance_sq_to_point r (P.make2 5.0 5.0));
  check_float "on edge" 0.0 (R.distance_sq_to_point r (P.make2 10.0 3.0));
  check_float "right of" 25.0 (R.distance_sq_to_point r (P.make2 15.0 5.0));
  check_float "corner" 8.0 (R.distance_sq_to_point r (P.make2 12.0 12.0));
  Alcotest.check_raises "dims"
    (Invalid_argument "Rect.distance_sq_to_point: dimension mismatch")
    (fun () -> ignore (R.distance_sq_to_point r (P.make [| 1.0 |])))

(* --- Properties ---------------------------------------------------------- *)

let rect_gen =
  let open QCheck2.Gen in
  let coord = float_range (-100.0) 100.0 in
  map4
    (fun x0 y0 dx dy -> R.make2 ~x0 ~y0 ~x1:(x0 +. abs_float dx) ~y1:(y0 +. abs_float dy))
    coord coord (float_range 0.0 50.0) (float_range 0.0 50.0)

let point_gen =
  let open QCheck2.Gen in
  map2 (fun x y -> P.make2 x y) (float_range (-150.0) 150.0)
    (float_range (-150.0) 150.0)

let prop_union_commutative =
  QCheck2.Test.make ~name:"union commutative" ~count:300
    QCheck2.Gen.(pair rect_gen rect_gen)
    (fun (a, b) -> R.equal (R.union a b) (R.union b a))

let prop_union_covers =
  QCheck2.Test.make ~name:"union covers both operands" ~count:300
    QCheck2.Gen.(pair rect_gen rect_gen)
    (fun (a, b) ->
      let u = R.union a b in
      R.contains u a && R.contains u b)

let prop_union_idempotent =
  QCheck2.Test.make ~name:"union idempotent" ~count:300 rect_gen (fun r ->
      R.equal (R.union r r) r)

let prop_area_monotone =
  QCheck2.Test.make ~name:"area monotone under union" ~count:300
    QCheck2.Gen.(pair rect_gen rect_gen)
    (fun (a, b) -> R.area (R.union a b) >= Float.max (R.area a) (R.area b) -. 1e-9)

let prop_containment_transitive =
  QCheck2.Test.make ~name:"containment transitive" ~count:300
    QCheck2.Gen.(triple rect_gen rect_gen rect_gen)
    (fun (a, b, c) ->
      (* Build a nested chain to make the premise non-vacuous. *)
      let b' = R.union a b and c' = R.union (R.union a b) c in
      R.contains c' b' && R.contains b' a && R.contains c' a)

let prop_intersection_inside =
  QCheck2.Test.make ~name:"intersection inside both" ~count:300
    QCheck2.Gen.(pair rect_gen rect_gen)
    (fun (a, b) ->
      match R.intersection a b with
      | None -> not (R.intersects a b)
      | Some i -> R.contains a i && R.contains b i)

let prop_point_in_union =
  QCheck2.Test.make ~name:"point in operand => in union" ~count:300
    QCheck2.Gen.(triple rect_gen rect_gen point_gen)
    (fun (a, b, p) ->
      let u = R.union a b in
      (not (R.contains_point a p)) || R.contains_point u p)

let prop_enlargement_nonneg =
  QCheck2.Test.make ~name:"enlargement non-negative" ~count:300
    QCheck2.Gen.(pair rect_gen rect_gen)
    (fun (a, b) -> R.enlargement a b >= -1e-9)

let prop_distance_zero_iff_inside =
  QCheck2.Test.make ~name:"distance 0 iff point inside" ~count:300
    QCheck2.Gen.(pair rect_gen point_gen)
    (fun (r, p) ->
      Bool.equal
        (R.distance_sq_to_point r p = 0.0)
        (R.contains_point r p))

let prop_distance_bounded_by_center =
  QCheck2.Test.make ~name:"rect distance <= distance to center" ~count:300
    QCheck2.Gen.(pair rect_gen point_gen)
    (fun (r, p) ->
      (not (Float.is_finite (Geometry.Point.distance (R.center r) p)))
      || R.distance_sq_to_point r p
         <= Geometry.Point.distance_sq (R.center r) p +. 1e-9)

let () =
  let qsuite =
    List.map QCheck_alcotest.to_alcotest
      [
        prop_union_commutative;
        prop_union_covers;
        prop_union_idempotent;
        prop_area_monotone;
        prop_containment_transitive;
        prop_intersection_inside;
        prop_point_in_union;
        prop_enlargement_nonneg;
        prop_distance_zero_iff_inside;
        prop_distance_bounded_by_center;
      ]
  in
  Alcotest.run "geometry"
    [
      ( "point",
        [
          Alcotest.test_case "basics" `Quick test_point_basics;
          Alcotest.test_case "errors" `Quick test_point_errors;
          Alcotest.test_case "distance" `Quick test_point_distance;
          Alcotest.test_case "immutability" `Quick test_point_immutable;
          Alcotest.test_case "compare" `Quick test_point_compare;
        ] );
      ( "rect",
        [
          Alcotest.test_case "basics" `Quick test_rect_basics;
          Alcotest.test_case "normalization" `Quick test_rect_normalizes;
          Alcotest.test_case "errors" `Quick test_rect_errors;
          Alcotest.test_case "containment" `Quick test_rect_contains;
          Alcotest.test_case "intersection" `Quick test_rect_intersection;
          Alcotest.test_case "union" `Quick test_rect_union;
          Alcotest.test_case "enlargement" `Quick test_rect_enlargement;
          Alcotest.test_case "unbounded" `Quick test_rect_unbounded;
          Alcotest.test_case "of_points" `Quick test_rect_of_points;
          Alcotest.test_case "distance to point" `Quick
            test_rect_distance_to_point;
        ] );
      ("properties", qsuite);
    ]
