(* Paper walkthrough: reconstructs the running example of the paper —
   the eight subscriptions of Figure 1, the centralized R-tree of
   Figure 2, the DR-tree of Figure 4, the communication graph of
   Figure 5, and the dissemination narrative of §3 ("the event is
   received only by S2, S3, and S4 ... necessitating only 2
   messages").

   Run with: dune exec examples/paper_figures.exe *)

module R = Geometry.Rect
module P = Geometry.Point
module O = Drtree.Overlay
module Inv = Drtree.Invariant

(* Figure 1, transcribed to concrete coordinates preserving every
   containment / intersection relation shown: S4 inside S2 and S3;
   S1 and S8 inside S3; S6 inside S5; S7 disjoint from everyone. *)
let subscriptions =
  [
    ("S1", R.make2 ~x0:42.0 ~y0:30.0 ~x1:52.0 ~y1:40.0);
    ("S2", R.make2 ~x0:5.0 ~y0:25.0 ~x1:35.0 ~y1:55.0);
    ("S3", R.make2 ~x0:20.0 ~y0:20.0 ~x1:70.0 ~y1:60.0);
    ("S4", R.make2 ~x0:25.0 ~y0:30.0 ~x1:33.0 ~y1:45.0);
    ("S5", R.make2 ~x0:60.0 ~y0:65.0 ~x1:95.0 ~y1:95.0);
    ("S6", R.make2 ~x0:70.0 ~y0:70.0 ~x1:80.0 ~y1:80.0);
    ("S7", R.make2 ~x0:75.0 ~y0:5.0 ~x1:95.0 ~y1:18.0);
    ("S8", R.make2 ~x0:55.0 ~y0:42.0 ~x1:65.0 ~y1:52.0);
  ]

let events =
  [
    ("a", P.make2 28.0 35.0);  (* inside S2 ∩ S3 ∩ S4 *)
    ("b", P.make2 75.0 75.0);  (* inside S5 ∩ S6 *)
    ("c", P.make2 62.0 45.0);  (* inside S3 ∩ S8 *)
    ("d", P.make2 2.0 90.0);   (* matches nobody *)
  ]

let () =
  (* --- Figure 1 (right): the containment graph ----------------------- *)
  print_endline "=== Figure 1: containment graph ===";
  let graph = Filter.Containment.build ~rect:snd subscriptions in
  List.iteri
    (fun i (name, _) ->
      let parents =
        List.map
          (fun j -> fst (Filter.Containment.item graph j))
          (Filter.Containment.parents graph i)
      in
      if parents <> [] then
        Printf.printf "  %s is directly contained in: %s\n" name
          (String.concat ", " parents))
    subscriptions;
  Printf.printf "  uncontained (graph roots): %s\n\n"
    (String.concat ", "
       (List.map
          (fun j -> fst (Filter.Containment.item graph j))
          (Filter.Containment.roots graph)));

  (* --- Figure 2: a centralized R-tree over the same filters ---------- *)
  print_endline "=== Figure 2: centralized R-tree (m=2, M=3) ===";
  let rt =
    Rtree.Tree.create (Rtree.Tree.config ~min_fill:2 ~max_fill:4 ())
  in
  List.iter (fun (name, r) -> Rtree.Tree.insert rt r name) subscriptions;
  Printf.printf "  %d subscriptions, height %d, invariants %s\n\n"
    (Rtree.Tree.size rt) (Rtree.Tree.height rt)
    (match Rtree.Tree.check_invariants rt with
    | Ok () -> "hold"
    | Error e -> "VIOLATED: " ^ e);

  (* --- Figure 4: the DR-tree ------------------------------------------ *)
  print_endline "=== Figure 4: DR-tree (logical tree, self-chains visible) ===";
  let ov = O.create ~seed:4 () in
  let ids =
    List.map (fun (name, r) -> (name, O.join ov r)) subscriptions
  in
  ignore (O.stabilize ~legal:Inv.is_legal ov);
  let name_of id =
    match List.find_opt (fun (_, i) -> i = id) ids with
    | Some (n, _) -> n
    | None -> "?"
  in
  (* Render the ascii tree with paper names. *)
  let ascii = Drtree.Export.to_ascii ov in
  List.iteri
    (fun _ line ->
      if line <> "" then begin
        (* replace nK with the subscription name *)
        let line =
          List.fold_left
            (fun acc (name, id) ->
              let needle = Printf.sprintf "n%d@" id in
              let replacement = Printf.sprintf "%s@" name in
              let buf = Buffer.create (String.length acc) in
              let n = String.length acc and m = String.length needle in
              let i = ref 0 in
              while !i < n do
                if !i + m <= n && String.sub acc !i m = needle then begin
                  Buffer.add_string buf replacement;
                  i := !i + m
                end
                else begin
                  Buffer.add_char buf acc.[!i];
                  incr i
                end
              done;
              Buffer.contents buf)
            line ids
        in
        print_endline ("  " ^ line)
      end)
    (String.split_on_char '\n' ascii);
  Printf.printf "  legal: %b; weak containment violations: %d\n\n"
    (Inv.is_legal ov)
    (Inv.weak_containment_violations ov);

  (* --- Figure 5: the physical communication graph --------------------- *)
  print_endline "=== Figure 5: communication graph ===";
  List.iter
    (fun (a, b) -> Printf.printf "  %s -- %s\n" (name_of a) (name_of b))
    (Drtree.Export.adjacency ov);
  print_newline ();

  (* --- §3 dissemination narrative -------------------------------------- *)
  print_endline "=== §3: event dissemination ===";
  List.iter
    (fun (ename, p) ->
      let publisher = List.assoc "S2" ids in
      let rep = O.publish ov ~from:publisher p in
      let names set =
        List.map name_of (Sim.Node_id.Set.elements set)
        |> List.sort compare |> String.concat ","
      in
      Printf.printf
        "  event %s published by S2: delivered to {%s} (matched {%s}), %d \
         messages, fn=%d fp=%d\n"
        ename
        (names rep.O.delivered)
        (names rep.O.matched)
        rep.O.messages rep.O.false_negatives rep.O.false_positives)
    events;
  print_newline ();

  (* --- Figure 3 (spatial view) as SVG ----------------------------------- *)
  let svg = Drtree.Export.to_svg ov in
  let path = Filename.concat (Filename.get_temp_dir_name ()) "drtree_fig3.svg" in
  let oc = open_out path in
  output_string oc svg;
  close_out oc;
  Printf.printf "=== Figure 3: spatial MBR view written to %s ===\n" path
