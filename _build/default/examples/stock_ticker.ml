(* Stock ticker: hundreds of traders with overlapping price/volume
   range filters, a skewed stream of quotes, and accuracy accounting —
   the selective-dissemination scenario that motivates the paper's
   introduction.

   Run with: dune exec examples/stock_ticker.exe *)

module Ps = Drtree.Pubsub
module Sub = Filter.Subscription
module Ev = Filter.Event
module Pred = Filter.Predicate
module V = Filter.Value
module Rng = Sim.Rng

let n_traders = 300
let n_quotes = 400

(* Trader archetypes: each translates to a price × volume rectangle. *)
let trader_subscription rng =
  match Rng.int rng 4 with
  | 0 ->
      (* Bargain hunter: cheap stocks, any volume. *)
      let cap = Rng.range rng 5.0 30.0 in
      Sub.make [ Pred.make "price" Pred.Le (V.float cap) ]
  | 1 ->
      (* Momentum trader: heavy volume in a price band. *)
      let lo = Rng.range rng 20.0 120.0 in
      Sub.make
        [
          Pred.between "price" (V.float lo) (V.float (lo +. Rng.range rng 5.0 25.0));
          Pred.make "volume" Pred.Ge (V.float (Rng.range rng 5e5 2e6));
        ]
  | 2 ->
      (* Blue-chip watcher: expensive, moderate volume. *)
      Sub.make
        [
          Pred.make "price" Pred.Ge (V.float (Rng.range rng 100.0 160.0));
          Pred.between "volume" (V.float 1e4) (V.float 1e6);
        ]
  | _ ->
      (* Narrow band scalper. *)
      let lo = Rng.range rng 10.0 150.0 in
      let vlo = Rng.range rng 1e4 1e6 in
      Sub.make
        [
          Pred.between "price" (V.float lo) (V.float (lo +. 3.0));
          Pred.between "volume" (V.float vlo) (V.float (vlo *. 2.0));
        ]

(* Quotes: prices log-normal-ish around 40, volumes heavy-tailed. *)
let quote rng =
  let price = Float.min 200.0 (Float.abs (Rng.gaussian rng ~mean:40.0 ~stddev:30.0)) in
  let volume = Float.min 5e6 (Rng.exponential rng ~rate:(1.0 /. 4e5)) in
  Ev.make [ ("price", V.float price); ("volume", V.float volume) ]

let () =
  let schema = Filter.Schema.make [ "price"; "volume" ] in
  (* Declare the attribute domain: one-sided filters ("price <= 30")
     then clip to finite rectangles, which keeps the tree's MBRs
     tight. *)
  let domain = Geometry.Rect.make2 ~x0:0.0 ~y0:0.0 ~x1:200.0 ~y1:5e6 in
  let ps = Ps.create ~schema ~domain ~seed:7 () in
  let rng = Rng.make 2024 in
  let traders = List.init n_traders (fun _ -> Ps.subscribe ps (trader_subscription rng)) in
  Printf.printf "market open: %d traders subscribed, overlay height %d\n"
    (Ps.size ps)
    (Drtree.Overlay.height (Ps.overlay ps));

  let deliveries = ref 0 and fp = ref 0 and fn = ref 0 in
  let messages = ref 0 and hops = ref 0 in
  for _ = 1 to n_quotes do
    let from = Rng.pick rng traders in
    let report = Ps.publish ps ~from (quote rng) in
    deliveries := !deliveries + Sim.Node_id.Set.cardinal report.Ps.delivered;
    fp := !fp + report.Ps.false_positives;
    fn := !fn + report.Ps.false_negatives;
    messages := !messages + report.Ps.messages;
    hops := max !hops report.Ps.max_hops
  done;

  Printf.printf "after %d quotes:\n" n_quotes;
  Printf.printf "  deliveries            : %d\n" !deliveries;
  Printf.printf "  false negatives       : %d (the DR-tree guarantees 0)\n" !fn;
  Printf.printf "  false positive rate   : %.2f%% of subscribers per quote\n"
    (100.0 *. float_of_int !fp /. float_of_int (n_quotes * n_traders));
  Printf.printf "  messages per quote    : %.1f (flooding would use %d)\n"
    (float_of_int !messages /. float_of_int n_quotes)
    (n_traders - 1);
  Printf.printf "  max delivery path     : %d hops\n" !hops;

  (* Intra-day churn: a tenth of the traders disconnect, new ones
     join; accuracy must survive. *)
  List.iteri
    (fun i id -> if i mod 10 = 0 then Ps.unsubscribe ps id)
    traders;
  let newcomers = List.init 30 (fun _ -> Ps.subscribe ps (trader_subscription rng)) in
  ignore (Ps.stabilize ps);
  let survivors =
    List.filter (fun id -> Drtree.Overlay.is_alive (Ps.overlay ps) id) traders
    @ newcomers
  in
  let fn_after = ref 0 in
  for _ = 1 to 100 do
    let report = Ps.publish ps ~from:(Rng.pick rng survivors) (quote rng) in
    fn_after := !fn_after + report.Ps.false_negatives
  done;
  Printf.printf "after churn (%d traders): false negatives in 100 quotes = %d\n"
    (Ps.size ps) !fn_after
