examples/quickstart.mli:
