examples/churn_demo.ml: Drtree Format Geometry List Printf Sim
