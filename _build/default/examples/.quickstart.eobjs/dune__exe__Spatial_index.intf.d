examples/spatial_index.mli:
