examples/spatial_index.ml: Geometry List Printf Rtree Sim
