examples/stock_ticker.ml: Drtree Filter Float Geometry List Printf Sim
