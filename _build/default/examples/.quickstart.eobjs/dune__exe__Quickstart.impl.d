examples/quickstart.ml: Drtree Filter List Printf Sim String
