examples/sensor_network.ml: Drtree Float Geometry List Printf Sim
