examples/paper_figures.ml: Buffer Drtree Filename Filter Geometry List Printf Rtree Sim String
