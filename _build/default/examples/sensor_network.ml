(* Sensor network: monitoring stations subscribe to geographic
   regions; sensors publish readings tagged with their position.
   Stations crash and recover; the overlay keeps routing readings to
   whoever watches that patch of ground.

   Run with: dune exec examples/sensor_network.exe *)

module O = Drtree.Overlay
module Inv = Drtree.Invariant
module R = Geometry.Rect
module P = Geometry.Point
module Rng = Sim.Rng

let stations = 200
let readings_per_phase = 150

(* Monitoring regions: clustered around a few facilities (dams,
   refineries, substations...). *)
let region rng =
  let facilities = [ (20.0, 20.0); (70.0, 30.0); (40.0, 80.0); (85.0, 85.0) ] in
  let fx, fy = List.nth facilities (Rng.int rng 4) in
  let cx = fx +. Rng.gaussian rng ~mean:0.0 ~stddev:8.0 in
  let cy = fy +. Rng.gaussian rng ~mean:0.0 ~stddev:8.0 in
  let w = Rng.range rng 2.0 12.0 and h = Rng.range rng 2.0 12.0 in
  let clamp v = Float.max 0.0 (Float.min 100.0 v) in
  R.make2
    ~x0:(clamp (cx -. w))
    ~y0:(clamp (cy -. h))
    ~x1:(clamp (cx +. w))
    ~y1:(clamp (cy +. h))

let reading rng =
  (* Readings cluster near facilities too. *)
  let facilities = [ (20.0, 20.0); (70.0, 30.0); (40.0, 80.0); (85.0, 85.0) ] in
  let fx, fy = List.nth facilities (Rng.int rng 4) in
  let clamp v = Float.max 0.0 (Float.min 100.0 v) in
  P.make2
    (clamp (fx +. Rng.gaussian rng ~mean:0.0 ~stddev:12.0))
    (clamp (fy +. Rng.gaussian rng ~mean:0.0 ~stddev:12.0))

let measure_phase name ov rng =
  let ids = O.alive_ids ov in
  let fp = ref 0 and fn = ref 0 and msgs = ref 0 and delivered = ref 0 in
  for _ = 1 to readings_per_phase do
    let report = O.publish ov ~from:(Rng.pick rng ids) (reading rng) in
    fp := !fp + report.O.false_positives;
    fn := !fn + report.O.false_negatives;
    msgs := !msgs + report.O.messages;
    delivered := !delivered + Sim.Node_id.Set.cardinal report.O.delivered
  done;
  Printf.printf
    "%-22s stations=%-4d height=%d  deliveries=%-5d fn=%d fp/reading=%.1f msgs/reading=%.1f\n"
    name (List.length ids) (O.height ov) !delivered !fn
    (float_of_int !fp /. float_of_int readings_per_phase)
    (float_of_int !msgs /. float_of_int readings_per_phase)

let () =
  let rng = Rng.make 11 in
  let ov = O.create ~seed:3 () in
  for _ = 1 to stations do
    ignore (O.join ov (region rng))
  done;
  ignore (O.stabilize ~legal:Inv.is_legal ov);
  Printf.printf "deployed %d monitoring stations (tree height %d, max %d words/node)\n\n"
    stations (O.height ov)
    (Inv.max_memory_words ov);

  measure_phase "steady state" ov rng;

  (* A storm takes out a fifth of the stations, silently. *)
  let victims = Drtree.Corrupt.random_victims ov (Rng.make 99) ~fraction:0.2 in
  List.iter (fun v -> O.crash ov v) victims;
  Printf.printf "\nstorm: %d stations lost, repairing...\n" (List.length victims);
  (match O.stabilize ~max_rounds:100 ~legal:Inv.is_legal ov with
  | Some rounds -> Printf.printf "overlay legal again after %d rounds\n\n" rounds
  | None -> Printf.printf "repair incomplete!\n\n");
  measure_phase "after storm" ov rng;

  (* Replacements come online. *)
  for _ = 1 to List.length victims do
    ignore (O.join ov (region rng))
  done;
  ignore (O.stabilize ~legal:Inv.is_legal ov);
  Printf.printf "\nreplacements joined\n\n";
  measure_phase "after redeployment" ov rng
