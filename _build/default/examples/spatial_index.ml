(* Spatial index: the sequential R-tree substrate on its own — bulk
   loading, window queries, k-nearest-neighbour search, and a
   comparison of the three split policies' tree quality. This is the
   centralized machinery the distributed DR-tree mirrors.

   Run with: dune exec examples/spatial_index.exe *)

module T = Rtree.Tree
module S = Rtree.Split
module R = Geometry.Rect
module P = Geometry.Point
module Rng = Sim.Rng

let n = 2000

(* Points of interest in a city: clustered around a few centres. *)
let pois rng =
  let centres = [ (25.0, 25.0); (70.0, 40.0); (45.0, 80.0) ] in
  List.init n (fun i ->
      let cx, cy = List.nth centres (Rng.int rng 3) in
      let x = Rng.gaussian rng ~mean:cx ~stddev:10.0 in
      let y = Rng.gaussian rng ~mean:cy ~stddev:10.0 in
      let r = R.make2 ~x0:x ~y0:y ~x1:(x +. 0.2) ~y1:(y +. 0.2) in
      (r, i))

let () =
  let rng = Rng.make 7 in
  let entries = pois rng in

  (* Bulk loading packs the tree tighter than incremental insertion. *)
  let cfg = T.config ~min_fill:2 ~max_fill:8 ~split:S.Rstar () in
  let packed = T.bulk_load cfg entries in
  let incremental = T.create cfg in
  List.iter (fun (r, i) -> T.insert incremental r i) entries;
  let sp = T.stats packed and si = T.stats incremental in
  Printf.printf "index of %d points of interest\n" n;
  Printf.printf "  bulk-loaded : height %d, %d nodes, coverage %.0f\n"
    (T.height packed) sp.T.node_count sp.T.total_coverage;
  Printf.printf "  incremental : height %d, %d nodes, coverage %.0f\n\n"
    (T.height incremental) si.T.node_count si.T.total_coverage;

  (* Window query: everything in a map viewport. *)
  let viewport = R.make2 ~x0:20.0 ~y0:20.0 ~x1:32.0 ~y1:32.0 in
  let visible = T.search_rect packed viewport in
  Printf.printf "viewport %s contains %d POIs\n" (R.to_string viewport)
    (List.length visible);

  (* k-nearest-neighbour: "what is near me?" *)
  let me = P.make2 50.0 50.0 in
  let nearby = T.nearest packed me ~k:5 in
  Printf.printf "5 nearest to %s:\n" (P.to_string me);
  List.iter
    (fun (d, r, i) ->
      Printf.printf "  poi #%d at %s (distance %.2f)\n" i (R.to_string r) d)
    nearby;

  (* Split policy quality on the same data. *)
  Printf.printf "\nsplit policy quality (incremental build, m=2 M=8):\n";
  List.iter
    (fun split ->
      let t = T.create (T.config ~min_fill:2 ~max_fill:8 ~split ()) in
      List.iter (fun (r, i) -> T.insert t r i) entries;
      let st = T.stats t in
      Printf.printf "  %-9s : %4d nodes, overlap %8.1f, coverage %8.0f\n"
        (S.kind_to_string split) st.T.node_count st.T.total_overlap
        st.T.total_coverage)
    [ S.Linear; S.Quadratic; S.Rstar ]
