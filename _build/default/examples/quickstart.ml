(* Quickstart: a minimal content-based publish/subscribe session on
   the DR-tree overlay.

   Run with: dune exec examples/quickstart.exe *)

module Ps = Drtree.Pubsub
module Sub = Filter.Subscription
module Ev = Filter.Event
module Pred = Filter.Predicate
module V = Filter.Value

let () =
  (* 1. Fix the attribute schema: every subscription and event speaks
     about these attributes. *)
  let schema = Filter.Schema.make [ "temperature"; "humidity" ] in
  let ps = Ps.create ~schema ~seed:42 () in

  (* 2. Subscribe. Each subscription is a conjunction of range
     predicates — geometrically, a rectangle. *)
  let freezing =
    Ps.subscribe ps
      (Sub.make [ Pred.make "temperature" Pred.Lt (V.float 0.0) ])
  in
  let comfy =
    Ps.subscribe ps
      (Sub.make
         [
           Pred.between "temperature" (V.float 18.0) (V.float 25.0);
           Pred.between "humidity" (V.float 30.0) (V.float 60.0);
         ])
  in
  let sauna =
    Ps.subscribe ps
      (Sub.make
         [
           Pred.make "temperature" Pred.Gt (V.float 70.0);
           Pred.make "humidity" Pred.Gt (V.float 80.0);
         ])
  in
  Printf.printf "subscribers: freezing=n%d comfy=n%d sauna=n%d\n" freezing
    comfy sauna;

  (* 3. Publish events. The overlay routes each event through the
     tree; the report tells who was interested and what it cost. *)
  let publish label bindings =
    let report = Ps.publish ps ~from:freezing (Ev.make bindings) in
    Printf.printf "%-12s -> interested={%s} messages=%d hops=%d fp=%d fn=%d\n"
      label
      (String.concat ","
         (List.map
            (fun id -> "n" ^ string_of_int id)
            (Sim.Node_id.Set.elements report.Ps.interested)))
      report.Ps.messages report.Ps.max_hops report.Ps.false_positives
      report.Ps.false_negatives
  in
  publish "mild day" [ ("temperature", V.float 21.0); ("humidity", V.float 45.0) ];
  publish "cold snap" [ ("temperature", V.float (-5.0)); ("humidity", V.float 80.0) ];
  publish "steam room" [ ("temperature", V.float 85.0); ("humidity", V.float 95.0) ];
  publish "nobody" [ ("temperature", V.float 40.0); ("humidity", V.float 10.0) ];

  (* 4. The overlay self-stabilizes; on a healthy run this is a
     no-op. *)
  match Ps.stabilize ps with
  | Some rounds -> Printf.printf "overlay legal after %d repair rounds\n" rounds
  | None -> Printf.printf "overlay failed to stabilize (unexpected)\n"
